package exec

import (
	"sync"
	"testing"

	"repro/internal/network"
	"repro/internal/testutil"
	"repro/internal/types"
)

// runShuffle executes a shuffle across n in-process nodes, each contributing
// perNode rows keyed 0..keys-1, and returns the rows each node received.
func runShuffle(t *testing.T, n, perNode, keys, nmax int, hierarchical bool) ([][]types.Row, *network.Meter) {
	t.Helper()
	testutil.AssertNoGoroutineLeak(t)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	fabric := network.NewFabric(ids, 256)
	defer fabric.CloseAll()
	spec := ShuffleSpec{Channel: "t-shuffle", Nodes: ids, Nmax: nmax, Hierarchical: hierarchical}

	results := make([][]types.Row, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := fabric.Endpoint(i)
			if err != nil {
				errs[i] = err
				return
			}
			var rows []types.Row
			for k := 0; k < perNode; k++ {
				rows = append(rows, types.Row{
					types.NewInt(int64((i*perNode + k) % keys)), // key
					types.NewInt(int64(i*perNode + k)),          // payload id
				})
			}
			src := NewSource(intSchema("k", "v"), rows)
			sh, err := NewShuffle(nil, ep, spec, src, ColRefs(0), types.Schema{})
			if err != nil {
				errs[i] = err
				return
			}
			out, err := Collect(sh)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = out
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return results, fabric.Meter()
}

func checkShuffleCorrect(t *testing.T, results [][]types.Row, n, total int) {
	t.Helper()
	seen := map[int64]int{}
	for node, rows := range results {
		for _, r := range rows {
			seen[r[1].Int()]++
			// Placement invariant: key hash mod n == node.
			wantNode := int(types.HashRow(r, []int{0}) % uint64(n))
			if wantNode != node {
				t.Fatalf("row key %d landed on node %d, want %d", r[0].Int(), node, wantNode)
			}
		}
	}
	if len(seen) != total {
		t.Fatalf("saw %d distinct rows, want %d", len(seen), total)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("row %d delivered %d times", id, c)
		}
	}
}

func TestShuffleDirect(t *testing.T) {
	n, perNode := 4, 200
	results, meter := runShuffle(t, n, perNode, 16, 0, false)
	checkShuffleCorrect(t, results, n, n*perNode)
	// Direct shuffle: each node talks with up to n-1 peers.
	if deg := meter.MaxNodeDegree(); deg < n-1 {
		t.Errorf("direct shuffle degree = %d, expected %d", deg, n-1)
	}
}

func TestShuffleHierarchical(t *testing.T) {
	n, perNode := 9, 100
	nmax := 2 // base = ceil(9^(1/2)) = 3, dists {1, 3}: degree 2
	results, meter := runShuffle(t, n, perNode, 16, nmax, true)
	checkShuffleCorrect(t, results, n, n*perNode)
	// The whole point: no node talks to more than ~2*nmax peers (nmax out
	// plus nmax in), even though all 9 nodes exchanged data.
	maxAllowed := 2 * nmax
	if deg := meter.MaxNodeDegree(); deg > maxAllowed {
		t.Errorf("hierarchical shuffle degree = %d, want <= %d", deg, maxAllowed)
	}
}

func TestShuffleHierarchicalMoreBytesFewerLinks(t *testing.T) {
	// Hub forwarding trades extra transfer volume for bounded connections.
	n, perNode := 8, 100
	_, direct := runShuffle(t, n, perNode, 64, 0, false)
	directBytes, directConns := direct.TotalBytes(), direct.Connections()
	_, hier := runShuffle(t, n, perNode, 64, 2, true)
	hierBytes, hierConns := hier.TotalBytes(), hier.Connections()
	if hierConns >= directConns {
		t.Errorf("hierarchical connections %d should be < direct %d", hierConns, directConns)
	}
	if hierBytes < directBytes {
		t.Errorf("hierarchical bytes %d should be >= direct %d (forwarding)", hierBytes, directBytes)
	}
}

func TestShuffleSingleNode(t *testing.T) {
	results, _ := runShuffle(t, 1, 50, 4, 0, false)
	if len(results[0]) != 50 {
		t.Fatalf("single node shuffle = %d rows", len(results[0]))
	}
}

func TestSendAllRecv(t *testing.T) {
	fabric := network.NewFabric([]int{0, 1, 2}, 64)
	defer fabric.CloseAll()
	sch := intSchema("a")
	var wg sync.WaitGroup
	for w := 1; w <= 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ep, _ := fabric.Endpoint(w)
			src := NewSource(sch, intRows([]int64{int64(w * 10)}, []int64{int64(w*10 + 1)}))
			if err := SendAll(nil, ep, 0, "gather", src); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	ep0, _ := fabric.Endpoint(0)
	recv := NewRecv(ep0, "gather", 2, sch)
	rows, err := Collect(recv)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(rows) != 4 {
		t.Fatalf("gathered %d rows", len(rows))
	}
}

func TestBroadcastExchange(t *testing.T) {
	fabric := network.NewFabric([]int{0, 1, 2}, 64)
	defer fabric.CloseAll()
	sch := intSchema("a")
	go func() {
		ep, _ := fabric.Endpoint(0)
		src := NewSource(sch, intRows([]int64{7}, []int64{8}))
		if err := Broadcast(nil, ep, []int{1, 2}, "bc", src); err != nil {
			t.Errorf("broadcast: %v", err)
		}
	}()
	for _, w := range []int{1, 2} {
		ep, _ := fabric.Endpoint(w)
		rows, err := Collect(NewRecv(ep, "bc", 1, sch))
		if err != nil || len(rows) != 2 {
			t.Fatalf("node %d received %d rows err=%v", w, len(rows), err)
		}
	}
}

// TestShuffleBroadcastFlag exercises ShuffleSpec.Broadcast: every node's
// input rows must arrive at every node (the broadcast-join build side),
// with no hashing involved.
func TestShuffleBroadcastFlag(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	const n, perNode = 4, 25
	ids := []int{0, 1, 2, 3}
	fabric := network.NewFabric(ids, 256)
	defer fabric.CloseAll()
	spec := ShuffleSpec{Channel: "t-bcast", Nodes: ids, Nmax: 3, Hierarchical: true, Broadcast: true}

	results := make([][]types.Row, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := fabric.Endpoint(i)
			if err != nil {
				errs[i] = err
				return
			}
			var rows []types.Row
			for k := 0; k < perNode; k++ {
				rows = append(rows, types.Row{types.NewInt(int64(i*perNode + k))})
			}
			src := NewSource(intSchema("v"), rows)
			sh, err := NewShuffle(nil, ep, spec, src, nil, types.Schema{})
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = Collect(sh)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	for node, rows := range results {
		if len(rows) != n*perNode {
			t.Fatalf("node %d received %d rows, want %d (full copy)", node, len(rows), n*perNode)
		}
		seen := map[int64]bool{}
		for _, r := range rows {
			seen[r[0].Int()] = true
		}
		if len(seen) != n*perNode {
			t.Fatalf("node %d: %d distinct of %d — duplicates replaced rows", node, len(seen), n*perNode)
		}
	}
}

func TestTreeReduceAggregation(t *testing.T) {
	// 7 nodes, fan-out 2: hierarchical pre-aggregation up the tree, as the
	// paper's tree-topology aggregation does.
	const n = 7
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	fabric := network.NewFabric(ids, 64)
	defer fabric.CloseAll()
	spec := TreeReduceSpec{Channel: "tr", Nodes: ids, Nmax: 3}

	aggSpecs := []AggSpec{{Kind: AggSum, Name: "s"}, {Kind: AggCount, Name: "c"}}
	var rootOut []types.Row
	var rootErr error
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, _ := fabric.Endpoint(i)
			// Each node's local partial: one group (g=1), value = node id.
			local := NewHashAggregate(nil, NewSource(intSchema("g", "v"),
				intRows([]int64{1, int64(i)}, []int64{1, int64(i * 10)})),
				ColRefs(0),
				[]AggSpec{{Kind: AggSum, Arg: col(1), Name: "s"}, {Kind: AggCount, Name: "c"}},
				AggPartial)
			combine := func(ins []Operator) Operator {
				var merged Operator = NewUnion(ins...)
				return NewHashAggregate(nil, merged, ColRefs(0), aggSpecs, AggMerge)
			}
			op, err := RunTreeReduce(nil, ep, spec, local, combine)
			if err != nil {
				rootErr = err
				return
			}
			if op != nil { // root
				// Final pass converts merged states to values.
				final := NewHashAggregate(nil, op, ColRefs(0), aggSpecs, AggFinal)
				rootOut, rootErr = Collect(final)
			}
		}(i)
	}
	wg.Wait()
	if rootErr != nil {
		t.Fatal(rootErr)
	}
	if len(rootOut) != 1 {
		t.Fatalf("root groups = %v", rootOut)
	}
	// Sum over all nodes: sum(i + 10i) for i in 0..6 = 11 * 21 = 231.
	if rootOut[0][1].Float() != 231 {
		t.Errorf("tree sum = %v, want 231", rootOut[0][1])
	}
	if rootOut[0][2].Int() != 14 { // 2 rows per node × 7 nodes
		t.Errorf("tree count = %v, want 14", rootOut[0][2])
	}
	// Degree bound: no node should exceed nmax neighbors.
	if deg := fabric.Meter().MaxNodeDegree(); deg > 3 {
		t.Errorf("tree reduce degree = %d, want <= 3", deg)
	}
}

func TestTreeReduceMergeSort(t *testing.T) {
	// Distributed merge sort: leaves sort locally, inner nodes merge.
	const n = 5
	ids := []int{0, 1, 2, 3, 4}
	fabric := network.NewFabric(ids, 64)
	defer fabric.CloseAll()
	spec := TreeReduceSpec{Channel: "ms", Nodes: ids, Nmax: 3}
	keys := []SortKey{{Col: 0}}

	var rootOut []types.Row
	var rootErr error
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, _ := fabric.Endpoint(i)
			var rows []types.Row
			for k := 0; k < 20; k++ {
				rows = append(rows, types.Row{types.NewInt(int64((k*7 + i*3) % 100))})
			}
			local := NewSort(nil, NewSource(intSchema("x"), rows), keys)
			combine := func(ins []Operator) Operator { return NewMergeOperators(ins, keys) }
			op, err := RunTreeReduce(nil, ep, spec, local, combine)
			if err != nil {
				rootErr = err
				return
			}
			if op != nil {
				rootOut, rootErr = Collect(op)
			}
		}(i)
	}
	wg.Wait()
	if rootErr != nil {
		t.Fatal(rootErr)
	}
	if len(rootOut) != 100 {
		t.Fatalf("merged rows = %d, want 100", len(rootOut))
	}
	for i := 1; i < len(rootOut); i++ {
		if rootOut[i][0].Int() < rootOut[i-1][0].Int() {
			t.Fatalf("merge sort output out of order at %d", i)
		}
	}
}

func TestShuffleLargeHierarchical(t *testing.T) {
	// 16 nodes with nmax 2 (base 4): stress hub forwarding and termination.
	if testing.Short() {
		t.Skip("short mode")
	}
	n := 16
	results, meter := runShuffle(t, n, 300, 128, 2, true)
	checkShuffleCorrect(t, results, n, n*300)
	if deg := meter.MaxNodeDegree(); deg > 4 {
		t.Errorf("degree = %d, want <= 4", deg)
	}
}
