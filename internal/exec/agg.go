package exec

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/types"
)

// AggKind enumerates aggregate functions.
type AggKind uint8

// Aggregate functions.
const (
	AggSum AggKind = iota + 1
	AggCount
	AggAvg
	AggMin
	AggMax
)

// ParseAggKind maps a SQL function name to an AggKind.
func ParseAggKind(name string) (AggKind, bool) {
	switch strings.ToUpper(name) {
	case "SUM":
		return AggSum, true
	case "COUNT":
		return AggCount, true
	case "AVG":
		return AggAvg, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	default:
		return 0, false
	}
}

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "?"
	}
}

// AggSpec describes one aggregate output.
type AggSpec struct {
	Kind     AggKind
	Arg      expr.Expr // nil for COUNT(*)
	Distinct bool
	Name     string // output column name
}

// AggMode selects how the operator participates in distributed aggregation.
type AggMode uint8

// Aggregation modes: Complete computes final values locally; Partial emits
// mergeable states (the paper's pre-aggregation / MapReduce combiner);
// Merge combines partial states and can itself be chained up the tree
// topology; Final merges states and emits final values.
const (
	AggComplete AggMode = iota + 1
	AggPartial
	AggMerge
	AggFinal
)

// aggState is the in-flight accumulator for one (group, spec) pair.
type aggState struct {
	sumI     int64
	sumF     float64
	isFloat  bool
	count    int64
	min, max types.Value
	distinct map[string]bool
	seenAny  bool
}

func newAggState(distinct bool) *aggState {
	s := &aggState{min: types.Null, max: types.Null}
	if distinct {
		s.distinct = map[string]bool{}
	}
	return s
}

// add folds a value into the state (from raw input rows).
func (s *aggState) add(v types.Value) {
	if v.IsNull() {
		return
	}
	if s.distinct != nil {
		key := string(types.AppendValue(nil, v))
		if s.distinct[key] {
			return
		}
		s.distinct[key] = true
	}
	s.seenAny = true
	s.count++
	switch v.K {
	case types.KindInt, types.KindDate, types.KindBool:
		s.sumI += v.I
		s.sumF += float64(v.I)
	case types.KindFloat:
		s.isFloat = true
		s.sumF += v.F
	}
	if s.min.IsNull() || types.Compare(v, s.min) < 0 {
		s.min = v
	}
	if s.max.IsNull() || types.Compare(v, s.max) > 0 {
		s.max = v
	}
}

// addCountStar counts a row for COUNT(*).
func (s *aggState) addCountStar() {
	s.seenAny = true
	s.count++
}

// merge folds a partial-state row segment into the state. Partial encoding
// per spec: sum (float), count (int), min, max — 4 columns.
const partialCols = 4

func (s *aggState) merge(seg types.Row) {
	cnt := seg[1].Int()
	if cnt == 0 {
		return
	}
	s.seenAny = true
	s.count += cnt
	if !seg[0].IsNull() {
		if seg[0].K == types.KindFloat && seg[0].F != float64(int64(seg[0].F)) {
			s.isFloat = true
		}
		s.sumF += seg[0].Float()
		s.sumI += int64(seg[0].Float())
	}
	if !seg[2].IsNull() && (s.min.IsNull() || types.Compare(seg[2], s.min) < 0) {
		s.min = seg[2]
	}
	if !seg[3].IsNull() && (s.max.IsNull() || types.Compare(seg[3], s.max) > 0) {
		s.max = seg[3]
	}
}

// partial emits the mergeable 4-column encoding.
func (s *aggState) partial() types.Row {
	var sum types.Value
	if s.isFloat {
		sum = types.NewFloat(s.sumF)
	} else {
		sum = types.NewInt(s.sumI)
	}
	return types.Row{sum, types.NewInt(s.count), s.min, s.max}
}

// final computes the aggregate's final value.
func (s *aggState) final(kind AggKind) types.Value {
	switch kind {
	case AggCount:
		return types.NewInt(s.count)
	case AggSum:
		if !s.seenAny {
			return types.Null
		}
		if s.isFloat {
			return types.NewFloat(s.sumF)
		}
		return types.NewInt(s.sumI)
	case AggAvg:
		if s.count == 0 {
			return types.Null
		}
		return types.NewFloat(s.sumF / float64(s.count))
	case AggMin:
		return s.min
	case AggMax:
		return s.max
	default:
		return types.Null
	}
}

// HashAggregate groups rows by key columns and computes aggregates. With
// a memory budget it spills overflow groups' input rows to disk partitions
// and processes them after the in-memory pass (the paper's "operators can
// spill data to disk to limit memory consumption").
type HashAggregate struct {
	In       Operator
	GroupBy  []expr.Expr // group key expressions over the input
	Specs    []AggSpec
	Mode     AggMode
	ctx      *Ctx
	out      types.Schema
	results  []types.Row
	pos      int
	prepared bool
}

// NewHashAggregate builds an aggregation operator. For Merge/Final modes
// the input schema must be groupCols ++ partial states (4 columns per spec).
func NewHashAggregate(ctx *Ctx, in Operator, groupBy []expr.Expr, specs []AggSpec, mode AggMode) *HashAggregate {
	h := &HashAggregate{In: in, GroupBy: groupBy, Specs: specs, Mode: mode, ctx: ctx}
	inSch := in.Schema()
	var cols []types.Column
	for gi, g := range groupBy {
		name := g.String()
		if c, ok := g.(*expr.Col); ok && c.Name != "" {
			name = c.Name
		} else if name == "" {
			name = fmt.Sprintf("group%d", gi)
		}
		cols = append(cols, types.Column{Name: name, Kind: expr.KindOf(g, inSch)})
	}
	switch mode {
	case AggPartial, AggMerge:
		for _, sp := range specs {
			base := sp.Name
			cols = append(cols,
				types.Column{Name: base + "$sum", Kind: types.KindFloat},
				types.Column{Name: base + "$cnt", Kind: types.KindInt},
				types.Column{Name: base + "$min", Kind: types.KindNull},
				types.Column{Name: base + "$max", Kind: types.KindNull},
			)
		}
	default:
		for _, sp := range specs {
			kind := types.KindFloat
			switch sp.Kind {
			case AggCount:
				kind = types.KindInt
			case AggSum:
				if sp.Arg != nil && expr.KindOf(sp.Arg, inSch) == types.KindInt {
					kind = types.KindInt
				}
			case AggMin, AggMax:
				if sp.Arg != nil {
					kind = expr.KindOf(sp.Arg, inSch)
				}
			}
			cols = append(cols, types.Column{Name: sp.Name, Kind: kind})
		}
	}
	h.out = types.Schema{Cols: cols}
	return h
}

// Schema implements Operator.
func (h *HashAggregate) Schema() types.Schema { return h.out }

// Open implements Operator.
func (h *HashAggregate) Open() error {
	h.results = nil
	h.pos = 0
	h.prepared = false
	return h.In.Open()
}

type aggGroup struct {
	key    types.Row
	states []*aggState
}

// consume drains the input building group states, spilling input rows for
// groups beyond the budget.
func (h *HashAggregate) prepare() error {
	groups := map[string]*aggGroup{}
	var spill *spillWriter
	fromStates := h.Mode == AggMerge || h.Mode == AggFinal
	if fromStates {
		if err := validateAggSchema(h.In.Schema(), h.GroupBy, h.Specs); err != nil {
			return err
		}
	}

	// Scratch buffers reused across rows: the table build runs once per
	// input row, and a per-row key allocation dominates its profile. The
	// groups[string(keyBuf)] lookup does not allocate; the string is only
	// materialized when a new group is inserted.
	keyScratch := make(types.Row, len(h.GroupBy))
	var keyBuf []byte
	processRow := func(r types.Row, allowSpill bool) (bool, error) {
		if h.ctx != nil {
			h.ctx.RowsProcessed.Add(1)
		}
		keyRow := keyScratch
		for i, k := range h.GroupBy {
			v, err := k.Eval(r)
			if err != nil {
				return true, err
			}
			keyRow[i] = v
		}
		keyBuf = types.AppendRow(keyBuf[:0], keyRow)
		g, ok := groups[string(keyBuf)]
		if !ok {
			if allowSpill && h.ctx != nil && h.ctx.MemRows > 0 && len(groups) >= h.ctx.MemRows {
				return false, nil // overflow: spill the raw row
			}
			g = &aggGroup{key: keyRow.Clone(), states: make([]*aggState, len(h.Specs))}
			for i, sp := range h.Specs {
				g.states[i] = newAggState(sp.Distinct && !fromStates)
			}
			groups[string(keyBuf)] = g
			if h.ctx != nil {
				h.ctx.addState(int64(types.RowEncodedSize(keyRow)) + int64(48*len(h.Specs)))
			}
		}
		if fromStates {
			base := len(h.GroupBy)
			for i := range h.Specs {
				g.states[i].merge(r[base+i*partialCols : base+(i+1)*partialCols])
			}
			return true, nil
		}
		for i, sp := range h.Specs {
			if sp.Arg == nil {
				g.states[i].addCountStar()
				continue
			}
			v, err := sp.Arg.Eval(r)
			if err != nil {
				return true, err
			}
			g.states[i].add(v)
		}
		return true, nil
	}

	emit := func() {
		for _, g := range groups {
			out := g.key.Clone()
			if h.Mode == AggPartial || h.Mode == AggMerge {
				for _, st := range g.states {
					out = append(out, st.partial()...)
				}
			} else {
				for i, sp := range h.Specs {
					out = append(out, g.states[i].final(sp.Kind))
				}
			}
			h.results = append(h.results, out)
		}
		groups = map[string]*aggGroup{}
	}

	ingest := func(r types.Row) error {
		accepted, err := processRow(r, true)
		if err != nil {
			return err
		}
		if !accepted {
			if spill == nil {
				spill, err = newSpillWriter(h.ctx, "agg-spill-*")
				if err != nil {
					return err
				}
			}
			if err := spill.write(r); err != nil {
				return err
			}
		}
		return nil
	}

	// Drain the input on the batch path when it offers one: the table build
	// is the hot loop of every aggregation query, and slab-at-a-time input
	// removes the per-row iterator call.
	if bin, ok := nativeBatch(h.In); ok {
		for {
			batch, ok, err := bin.NextBatch()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			for _, r := range batch {
				if err := ingest(r); err != nil {
					return err
				}
			}
		}
	} else {
		for {
			r, ok, err := h.In.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if err := ingest(r); err != nil {
				return err
			}
		}
	}
	emit()

	// Recursively process spilled rows in passes; each pass handles up to
	// MemRows groups.
	for spill != nil {
		reader, err := spill.finish()
		if err != nil {
			return err
		}
		spill = nil
		for {
			r, ok, err := reader.next()
			if err != nil {
				reader.close()
				return err
			}
			if !ok {
				break
			}
			accepted, err := processRow(r, true)
			if err != nil {
				reader.close()
				return err
			}
			if !accepted {
				if spill == nil {
					spill, err = newSpillWriter(h.ctx, "agg-spill-*")
					if err != nil {
						reader.close()
						return err
					}
				}
				if err := spill.write(r); err != nil {
					reader.close()
					return err
				}
			}
		}
		reader.close()
		emit()
	}

	// No GROUP BY: SQL semantics require one output row even on empty input.
	if len(h.GroupBy) == 0 && len(h.results) == 0 && (h.Mode == AggComplete || h.Mode == AggFinal) {
		out := types.Row{}
		for _, sp := range h.Specs {
			st := newAggState(false)
			out = append(out, st.final(sp.Kind))
		}
		h.results = append(h.results, out)
	}
	if len(h.GroupBy) == 0 && len(h.results) == 0 && (h.Mode == AggPartial || h.Mode == AggMerge) {
		out := types.Row{}
		st := newAggState(false)
		for range h.Specs {
			out = append(out, st.partial()...)
		}
		h.results = append(h.results, out)
	}
	h.prepared = true
	return nil
}

// Next implements Operator.
func (h *HashAggregate) Next() (types.Row, bool, error) {
	if !h.prepared {
		if err := h.prepare(); err != nil {
			return nil, false, err
		}
	}
	if h.pos >= len(h.results) {
		return nil, false, nil
	}
	r := h.results[h.pos]
	h.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator, serving the prepared results in
// slabs. The slab is a window of h.results that iteration has retired by
// the time the caller holds it, so in-place compaction is safe.
func (h *HashAggregate) NextBatch() ([]types.Row, bool, error) {
	if !h.prepared {
		if err := h.prepare(); err != nil {
			return nil, false, err
		}
	}
	if h.pos >= len(h.results) {
		return nil, false, nil
	}
	end := h.pos + h.ctx.batchRows()
	if end > len(h.results) {
		end = len(h.results)
	}
	out := h.results[h.pos:end]
	h.pos = end
	return out, true, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error { return h.In.Close() }

// validateAggSchema asserts partial-state arity for Merge/Final inputs.
func validateAggSchema(in types.Schema, groupBy []expr.Expr, specs []AggSpec) error {
	want := len(groupBy) + len(specs)*partialCols
	if in.Len() != want {
		return fmt.Errorf("exec: merge aggregate input has %d columns, want %d", in.Len(), want)
	}
	return nil
}
