package exec

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/types"
)

// AggKind enumerates aggregate functions.
type AggKind uint8

// Aggregate functions.
const (
	AggSum AggKind = iota + 1
	AggCount
	AggAvg
	AggMin
	AggMax
)

// ParseAggKind maps a SQL function name to an AggKind.
func ParseAggKind(name string) (AggKind, bool) {
	switch strings.ToUpper(name) {
	case "SUM":
		return AggSum, true
	case "COUNT":
		return AggCount, true
	case "AVG":
		return AggAvg, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	default:
		return 0, false
	}
}

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "?"
	}
}

// AggSpec describes one aggregate output.
type AggSpec struct {
	Kind     AggKind
	Arg      expr.Expr // nil for COUNT(*)
	Distinct bool
	Name     string // output column name
}

// AggMode selects how the operator participates in distributed aggregation.
type AggMode uint8

// Aggregation modes: Complete computes final values locally; Partial emits
// mergeable states (the paper's pre-aggregation / MapReduce combiner);
// Merge combines partial states and can itself be chained up the tree
// topology; Final merges states and emits final values.
const (
	AggComplete AggMode = iota + 1
	AggPartial
	AggMerge
	AggFinal
)

// aggState is the in-flight accumulator for one (group, spec) pair.
type aggState struct {
	sumI     int64
	sumF     float64
	isFloat  bool
	count    int64
	min, max types.Value
	distinct map[string]bool
	seenAny  bool
}

func newAggState(distinct bool) *aggState {
	s := &aggState{min: types.Null, max: types.Null}
	if distinct {
		s.distinct = map[string]bool{}
	}
	return s
}

// add folds a value into the state (from raw input rows).
func (s *aggState) add(v types.Value) {
	if v.IsNull() {
		return
	}
	if s.distinct != nil {
		key := string(types.AppendValue(nil, v))
		if s.distinct[key] {
			return
		}
		s.distinct[key] = true
	}
	s.seenAny = true
	s.count++
	switch v.K {
	case types.KindInt, types.KindDate, types.KindBool:
		s.sumI += v.I
		s.sumF += float64(v.I)
	case types.KindFloat:
		s.isFloat = true
		s.sumF += v.F
	}
	if s.min.IsNull() || types.Compare(v, s.min) < 0 {
		s.min = v
	}
	if s.max.IsNull() || types.Compare(v, s.max) > 0 {
		s.max = v
	}
}

// addCountStar counts a row for COUNT(*).
func (s *aggState) addCountStar() {
	s.seenAny = true
	s.count++
}

// merge folds a partial-state row segment into the state. Partial encoding
// per spec: sum (float), count (int), min, max — 4 columns.
const partialCols = 4

func (s *aggState) merge(seg types.Row) {
	cnt := seg[1].Int()
	if cnt == 0 {
		return
	}
	s.seenAny = true
	s.count += cnt
	if !seg[0].IsNull() {
		if seg[0].K == types.KindFloat && seg[0].F != float64(int64(seg[0].F)) {
			s.isFloat = true
		}
		s.sumF += seg[0].Float()
		s.sumI += int64(seg[0].Float())
	}
	if !seg[2].IsNull() && (s.min.IsNull() || types.Compare(seg[2], s.min) < 0) {
		s.min = seg[2]
	}
	if !seg[3].IsNull() && (s.max.IsNull() || types.Compare(seg[3], s.max) > 0) {
		s.max = seg[3]
	}
}

// combine folds another in-flight accumulator for the same (group, spec)
// pair into s — the merge step of the parallel table build, where each
// worker accumulated a disjoint share of the group's input rows. Distinct
// states cannot be combined (each worker deduplicated only its own share),
// which is why the parallel path refuses raw distinct aggregation.
func (s *aggState) combine(o *aggState) {
	if !o.seenAny {
		return
	}
	s.seenAny = true
	s.count += o.count
	s.sumI += o.sumI
	s.sumF += o.sumF
	s.isFloat = s.isFloat || o.isFloat
	if !o.min.IsNull() && (s.min.IsNull() || types.Compare(o.min, s.min) < 0) {
		s.min = o.min
	}
	if !o.max.IsNull() && (s.max.IsNull() || types.Compare(o.max, s.max) > 0) {
		s.max = o.max
	}
}

// partial emits the mergeable 4-column encoding.
func (s *aggState) partial() types.Row {
	var sum types.Value
	if s.isFloat {
		sum = types.NewFloat(s.sumF)
	} else {
		sum = types.NewInt(s.sumI)
	}
	return types.Row{sum, types.NewInt(s.count), s.min, s.max}
}

// final computes the aggregate's final value.
func (s *aggState) final(kind AggKind) types.Value {
	switch kind {
	case AggCount:
		return types.NewInt(s.count)
	case AggSum:
		if !s.seenAny {
			return types.Null
		}
		if s.isFloat {
			return types.NewFloat(s.sumF)
		}
		return types.NewInt(s.sumI)
	case AggAvg:
		if s.count == 0 {
			return types.Null
		}
		return types.NewFloat(s.sumF / float64(s.count))
	case AggMin:
		return s.min
	case AggMax:
		return s.max
	default:
		return types.Null
	}
}

// HashAggregate groups rows by key columns and computes aggregates. With
// a memory budget it spills overflow groups' input rows to disk partitions
// and processes them after the in-memory pass (the paper's "operators can
// spill data to disk to limit memory consumption").
type HashAggregate struct {
	In      Operator
	GroupBy []expr.Expr // group key expressions over the input
	Specs   []AggSpec
	Mode    AggMode
	// Parallel is the desired table-build parallelism. Values above 1 make
	// prepare acquire extra workers from the Ctx budget and build
	// thread-local partitioned tables that are merged in parallel; 0/1 (or
	// raw DISTINCT aggregation, which cannot merge) keep the serial build.
	Parallel int
	// Trace, when non-nil, records the granted worker count.
	Trace    *obs.Span
	ctx      *Ctx
	out      types.Schema
	results  []types.Row
	pos      int
	prepared bool
}

// NewHashAggregate builds an aggregation operator. For Merge/Final modes
// the input schema must be groupCols ++ partial states (4 columns per spec).
func NewHashAggregate(ctx *Ctx, in Operator, groupBy []expr.Expr, specs []AggSpec, mode AggMode) *HashAggregate {
	h := &HashAggregate{In: in, GroupBy: groupBy, Specs: specs, Mode: mode, ctx: ctx}
	h.out = aggOutputSchema(in.Schema(), groupBy, specs, mode)
	return h
}

// aggOutputSchema computes the aggregation output schema: group columns
// followed by either partial-state columns (Partial/Merge) or final value
// columns. Shared by the row and the vector aggregate so both emit
// identically-typed rows.
func aggOutputSchema(inSch types.Schema, groupBy []expr.Expr, specs []AggSpec, mode AggMode) types.Schema {
	var cols []types.Column
	for gi, g := range groupBy {
		name := g.String()
		if c, ok := g.(*expr.Col); ok && c.Name != "" {
			name = c.Name
		} else if name == "" {
			name = fmt.Sprintf("group%d", gi)
		}
		cols = append(cols, types.Column{Name: name, Kind: expr.KindOf(g, inSch)})
	}
	switch mode {
	case AggPartial, AggMerge:
		for _, sp := range specs {
			base := sp.Name
			cols = append(cols,
				types.Column{Name: base + "$sum", Kind: types.KindFloat},
				types.Column{Name: base + "$cnt", Kind: types.KindInt},
				types.Column{Name: base + "$min", Kind: types.KindNull},
				types.Column{Name: base + "$max", Kind: types.KindNull},
			)
		}
	default:
		for _, sp := range specs {
			kind := types.KindFloat
			switch sp.Kind {
			case AggCount:
				kind = types.KindInt
			case AggSum:
				if sp.Arg != nil && expr.KindOf(sp.Arg, inSch) == types.KindInt {
					kind = types.KindInt
				}
			case AggMin, AggMax:
				if sp.Arg != nil {
					kind = expr.KindOf(sp.Arg, inSch)
				}
			}
			cols = append(cols, types.Column{Name: sp.Name, Kind: kind})
		}
	}
	return types.Schema{Cols: cols}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() types.Schema { return h.out }

// Open implements Operator.
func (h *HashAggregate) Open() error {
	h.results = nil
	h.pos = 0
	h.prepared = false
	return h.In.Open()
}

type aggGroup struct {
	key    types.Row
	states []*aggState
}

// prepare drains the input and builds the result rows, choosing the serial
// or the parallel table build. Raw DISTINCT aggregation stays serial: each
// parallel worker would deduplicate only its own share of the input, so the
// merged counts would be wrong (distinct states cannot be combined).
func (h *HashAggregate) prepare() error {
	fromStates := h.Mode == AggMerge || h.Mode == AggFinal
	if fromStates {
		if err := validateAggSchema(h.In.Schema(), h.GroupBy, h.Specs); err != nil {
			return err
		}
	}
	rawDistinct := false
	if !fromStates {
		for _, sp := range h.Specs {
			if sp.Distinct {
				rawDistinct = true
			}
		}
	}
	degree := 1
	if h.Parallel > 1 && !rawDistinct {
		degree = h.ctx.AcquireWorkers(h.Parallel)
		defer h.ctx.ReleaseWorkers(degree)
	}
	var err error
	if degree > 1 {
		err = h.prepareParallel(degree, fromStates)
	} else {
		err = h.prepareSerial(fromStates)
	}
	if err != nil {
		return err
	}

	// No GROUP BY: SQL semantics require one output row even on empty input.
	if len(h.GroupBy) == 0 && len(h.results) == 0 && (h.Mode == AggComplete || h.Mode == AggFinal) {
		out := types.Row{}
		for _, sp := range h.Specs {
			st := newAggState(false)
			out = append(out, st.final(sp.Kind))
		}
		h.results = append(h.results, out)
	}
	if len(h.GroupBy) == 0 && len(h.results) == 0 && (h.Mode == AggPartial || h.Mode == AggMerge) {
		out := types.Row{}
		st := newAggState(false)
		for range h.Specs {
			out = append(out, st.partial()...)
		}
		h.results = append(h.results, out)
	}
	h.prepared = true
	return nil
}

// prepareSerial drains the input building group states on one thread,
// spilling input rows for groups beyond the budget.
func (h *HashAggregate) prepareSerial(fromStates bool) error {
	groups := map[string]*aggGroup{}
	var spill *spillWriter

	// Scratch buffers reused across rows: the table build runs once per
	// input row, and a per-row key allocation dominates its profile. The
	// groups[string(keyBuf)] lookup does not allocate; the string is only
	// materialized when a new group is inserted.
	keyScratch := make(types.Row, len(h.GroupBy))
	var keyBuf []byte
	processRow := func(r types.Row, allowSpill bool) (bool, error) {
		if h.ctx != nil {
			h.ctx.RowsProcessed.Add(1)
		}
		keyRow := keyScratch
		for i, k := range h.GroupBy {
			v, err := k.Eval(r)
			if err != nil {
				return true, err
			}
			keyRow[i] = v
		}
		keyBuf = types.AppendRow(keyBuf[:0], keyRow)
		g, ok := groups[string(keyBuf)]
		if !ok {
			if allowSpill && h.ctx != nil && h.ctx.MemRows > 0 && len(groups) >= h.ctx.MemRows {
				return false, nil // overflow: spill the raw row
			}
			g = &aggGroup{key: keyRow.Clone(), states: make([]*aggState, len(h.Specs))}
			for i, sp := range h.Specs {
				g.states[i] = newAggState(sp.Distinct && !fromStates)
			}
			groups[string(keyBuf)] = g
			if h.ctx != nil {
				h.ctx.addState(int64(types.RowEncodedSize(keyRow)) + int64(48*len(h.Specs)))
			}
		}
		if fromStates {
			base := len(h.GroupBy)
			for i := range h.Specs {
				g.states[i].merge(r[base+i*partialCols : base+(i+1)*partialCols])
			}
			return true, nil
		}
		for i, sp := range h.Specs {
			if sp.Arg == nil {
				g.states[i].addCountStar()
				continue
			}
			v, err := sp.Arg.Eval(r)
			if err != nil {
				return true, err
			}
			g.states[i].add(v)
		}
		return true, nil
	}

	emit := func() {
		for _, g := range groups {
			out := g.key.Clone()
			if h.Mode == AggPartial || h.Mode == AggMerge {
				for _, st := range g.states {
					out = append(out, st.partial()...)
				}
			} else {
				for i, sp := range h.Specs {
					out = append(out, g.states[i].final(sp.Kind))
				}
			}
			h.results = append(h.results, out)
		}
		groups = map[string]*aggGroup{}
	}

	ingest := func(r types.Row) error {
		accepted, err := processRow(r, true)
		if err != nil {
			return err
		}
		if !accepted {
			if spill == nil {
				spill, err = newSpillWriter(h.ctx, "agg-spill-*")
				if err != nil {
					return err
				}
			}
			if err := spill.write(r); err != nil {
				return err
			}
		}
		return nil
	}

	// Drain the input on the batch path when it offers one: the table build
	// is the hot loop of every aggregation query, and slab-at-a-time input
	// removes the per-row iterator call.
	if bin, ok := nativeBatch(h.In); ok {
		for {
			// Per-batch kill check: the input may produce many rows per
			// upstream cancel check (a high-fanout join probe), and the
			// blocking build would otherwise run to exhaustion.
			if err := h.ctx.canceled(); err != nil {
				return err
			}
			batch, ok, err := bin.NextBatch()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			for _, r := range batch {
				if err := ingest(r); err != nil {
					return err
				}
			}
		}
	} else {
		rowsSinceCheck := 0
		for {
			r, ok, err := h.In.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if rowsSinceCheck++; rowsSinceCheck >= 1024 {
				rowsSinceCheck = 0
				if err := h.ctx.canceled(); err != nil {
					return err
				}
			}
			if err := ingest(r); err != nil {
				return err
			}
		}
	}
	emit()

	// Recursively process spilled rows in passes; each pass handles up to
	// MemRows groups.
	for spill != nil {
		reader, err := spill.finish()
		if err != nil {
			return err
		}
		spill = nil
		for {
			r, ok, err := reader.next()
			if err != nil {
				reader.close()
				return err
			}
			if !ok {
				break
			}
			accepted, err := processRow(r, true)
			if err != nil {
				reader.close()
				return err
			}
			if !accepted {
				if spill == nil {
					spill, err = newSpillWriter(h.ctx, "agg-spill-*")
					if err != nil {
						reader.close()
						return err
					}
				}
				if err := spill.write(r); err != nil {
					reader.close()
					return err
				}
			}
		}
		reader.close()
		emit()
	}
	return nil
}

// fnv32 is FNV-1a over an encoded group key, used to pick the key's
// partition in the parallel table build.
func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// encodeKey evaluates the group key of r into keyScratch and returns its
// encoding appended into keyBuf[:0] (scratch buffers are per-goroutine).
func (h *HashAggregate) encodeKey(r types.Row, keyScratch types.Row, keyBuf []byte) ([]byte, error) {
	for i, k := range h.GroupBy {
		v, err := k.Eval(r)
		if err != nil {
			return keyBuf, err
		}
		keyScratch[i] = v
	}
	return types.AppendRow(keyBuf[:0], keyScratch), nil
}

// newGroup allocates a group for key (cloned out of the scratch row).
func (h *HashAggregate) newGroup(key types.Row, fromStates bool) *aggGroup {
	g := &aggGroup{key: key.Clone(), states: make([]*aggState, len(h.Specs))}
	for i, sp := range h.Specs {
		g.states[i] = newAggState(sp.Distinct && !fromStates)
	}
	if h.ctx != nil {
		h.ctx.addState(int64(types.RowEncodedSize(key)) + int64(48*len(h.Specs)))
	}
	return g
}

// foldInto folds one input row into a group's states.
func (h *HashAggregate) foldInto(g *aggGroup, r types.Row, fromStates bool) error {
	if fromStates {
		base := len(h.GroupBy)
		for i := range h.Specs {
			g.states[i].merge(r[base+i*partialCols : base+(i+1)*partialCols])
		}
		return nil
	}
	for i, sp := range h.Specs {
		if sp.Arg == nil {
			g.states[i].addCountStar()
			continue
		}
		v, err := sp.Arg.Eval(r)
		if err != nil {
			return err
		}
		g.states[i].add(v)
	}
	return nil
}

// emitGroup renders one group as an output row (partial states or finals).
func (h *HashAggregate) emitGroup(g *aggGroup) types.Row {
	out := g.key.Clone()
	if h.Mode == AggPartial || h.Mode == AggMerge {
		for _, st := range g.states {
			out = append(out, st.partial()...)
		}
	} else {
		for i, sp := range h.Specs {
			out = append(out, g.states[i].final(sp.Kind))
		}
	}
	return out
}

// aggWorker is one parallel build worker's thread-local state: one group
// table per partition plus a lazy spill writer per partition, so overflow
// rows keep partition affinity and the merge phase can process partitions
// independently.
type aggWorker struct {
	groups  []map[string]*aggGroup
	spills  []*spillWriter
	nGroups int
}

// prepareParallel builds the aggregation table with degree workers. The
// input is drained by this goroutine and fanned out slab-at-a-time; each
// worker hashes the scratch-encoded group key into one of P partitions of
// its own tables (no locks on the build path), spilling overflow rows to
// partition-affine spill files once its share of the memory budget is used.
// Partitions are then merged in parallel — worker tables combined state-wise,
// spilled rows drained in budgeted passes — and the per-partition results
// concatenated. Group content is identical to the serial build; only row
// order differs (both are map-iteration order).
func (h *HashAggregate) prepareParallel(degree int, fromStates bool) error {
	numPart := 16
	for numPart < 2*degree {
		numPart <<= 1
	}
	mask := uint32(numPart - 1)
	localBudget := 0
	if h.ctx != nil && h.ctx.MemRows > 0 {
		localBudget = h.ctx.MemRows / degree
		if localBudget < 1 {
			localBudget = 1
		}
	}
	workers := make([]*aggWorker, degree)
	batches := make(chan []types.Row, degree)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	errCh := make(chan error, degree)
	var wg sync.WaitGroup
	for w := 0; w < degree; w++ {
		aw := &aggWorker{groups: make([]map[string]*aggGroup, numPart), spills: make([]*spillWriter, numPart)}
		for p := range aw.groups {
			aw.groups[p] = map[string]*aggGroup{}
		}
		workers[w] = aw
		wg.Add(1)
		go func(aw *aggWorker) {
			defer wg.Done()
			keyScratch := make(types.Row, len(h.GroupBy))
			var keyBuf []byte
			ingest := func(r types.Row) error {
				if h.ctx != nil {
					h.ctx.RowsProcessed.Add(1)
				}
				var err error
				keyBuf, err = h.encodeKey(r, keyScratch, keyBuf)
				if err != nil {
					return err
				}
				p := int(fnv32(keyBuf) & mask)
				g, ok := aw.groups[p][string(keyBuf)]
				if !ok {
					if localBudget > 0 && aw.nGroups >= localBudget {
						if aw.spills[p] == nil {
							sw, err := newSpillWriter(h.ctx, "agg-spill-*")
							if err != nil {
								return err
							}
							aw.spills[p] = sw
						}
						return aw.spills[p].write(r)
					}
					g = h.newGroup(keyScratch, fromStates)
					aw.groups[p][string(keyBuf)] = g
					aw.nGroups++
				}
				return h.foldInto(g, r, fromStates)
			}
			for {
				select {
				case <-stop:
					return
				case batch, ok := <-batches:
					if !ok {
						return
					}
					for _, r := range batch {
						if err := ingest(r); err != nil {
							errCh <- err
							halt()
							return
						}
					}
				}
			}
		}(aw)
	}
	feedErr := feedRowBatches(h.ctx, h.In, h.ctx.batchRows(), batches, stop)
	close(batches)
	wg.Wait()
	abortSpills := func() {
		for _, aw := range workers {
			for _, sw := range aw.spills {
				if sw != nil {
					sw.abort()
				}
			}
		}
	}
	var firstErr error
	select {
	case firstErr = <-errCh:
	default:
		firstErr = feedErr
	}
	if firstErr != nil {
		abortSpills()
		return firstErr
	}

	// Merge phase: up to degree mergers claim partitions from a counter.
	outs := make([][]types.Row, numPart)
	mergers := degree
	if mergers > numPart {
		mergers = numPart
	}
	var nextPart atomic.Int64
	merr := make(chan error, mergers)
	var mwg sync.WaitGroup
	for m := 0; m < mergers; m++ {
		mwg.Add(1)
		go func() {
			defer mwg.Done()
			keyScratch := make(types.Row, len(h.GroupBy))
			var keyBuf []byte
			for {
				p := int(nextPart.Add(1) - 1)
				if p >= numPart {
					return
				}
				rows, err := h.mergePartition(p, workers, fromStates, localBudget, keyScratch, &keyBuf)
				if err != nil {
					merr <- err
					return
				}
				outs[p] = rows
			}
		}()
	}
	mwg.Wait()
	select {
	case err := <-merr:
		abortSpills()
		return err
	default:
	}
	for _, rows := range outs {
		h.results = append(h.results, rows...)
	}
	h.Trace.AddWorkers(int64(degree))
	return nil
}

// feedRowBatches drains an operator on the batch path when it offers one,
// fanning slabs out to parallel build workers. Every slab is copied before
// crossing the goroutine boundary (the producer reuses its slab buffer per
// the batch ownership contract). Returns early without error when stop
// closes — the workers already have an error to report. The kill switch is
// re-checked per batch: blocking consumers (aggregation, sort) may sit over
// inputs that buffer many rows per upstream cancel check, and this bound
// keeps KILL latency at one batch regardless.
func feedRowBatches(ctx *Ctx, in Operator, size int, batches chan<- []types.Row, stop <-chan struct{}) error {
	if bin, ok := nativeBatch(in); ok {
		for {
			if err := ctx.canceled(); err != nil {
				return err
			}
			b, ok, err := bin.NextBatch()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			cp := make([]types.Row, len(b))
			copy(cp, b)
			select {
			case batches <- cp:
			case <-stop:
				return nil
			}
		}
	}
	buf := make([]types.Row, 0, size)
	for {
		r, ok, err := in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		buf = append(buf, r)
		if len(buf) >= size {
			if err := ctx.canceled(); err != nil {
				return err
			}
			select {
			case batches <- buf:
			case <-stop:
				return nil
			}
			buf = make([]types.Row, 0, size)
		}
	}
	if len(buf) > 0 {
		select {
		case batches <- buf:
		case <-stop:
		}
	}
	return nil
}

// mergePartition combines every worker's partition-p table into one
// (state-wise combine on group collisions), then drains the partition's
// spilled rows in budgeted passes — each pass admits localBudget new groups
// and respills the rest — and emits the partition's result rows.
func (h *HashAggregate) mergePartition(p int, workers []*aggWorker, fromStates bool, localBudget int, keyScratch types.Row, keyBuf *[]byte) ([]types.Row, error) {
	merged := workers[0].groups[p]
	for _, aw := range workers[1:] {
		for k, g := range aw.groups[p] {
			if ex, ok := merged[k]; ok {
				for i := range ex.states {
					ex.states[i].combine(g.states[i])
				}
			} else {
				merged[k] = g
			}
		}
	}
	var readers []*spillReader
	closeAll := func(rs []*spillReader) {
		for _, rd := range rs {
			rd.close()
		}
	}
	for _, aw := range workers {
		if aw.spills[p] != nil {
			sw := aw.spills[p]
			aw.spills[p] = nil
			rd, err := sw.finish()
			if err != nil {
				closeAll(readers)
				return nil, err
			}
			readers = append(readers, rd)
		}
	}
	for len(readers) > 0 {
		capGroups := len(merged) + localBudget
		var respill *spillWriter
		for ri, rd := range readers {
			fail := func(err error) ([]types.Row, error) {
				closeAll(readers[ri:])
				if respill != nil {
					respill.abort()
				}
				return nil, err
			}
			for {
				r, ok, err := rd.next()
				if err != nil {
					return fail(err)
				}
				if !ok {
					break
				}
				if h.ctx != nil {
					h.ctx.RowsProcessed.Add(1)
				}
				kb, err := h.encodeKey(r, keyScratch, *keyBuf)
				*keyBuf = kb
				if err != nil {
					return fail(err)
				}
				g, ok := merged[string(kb)]
				if !ok {
					if len(merged) >= capGroups {
						if respill == nil {
							respill, err = newSpillWriter(h.ctx, "agg-spill-*")
							if err != nil {
								return fail(err)
							}
						}
						if err := respill.write(r); err != nil {
							return fail(err)
						}
						continue
					}
					g = h.newGroup(keyScratch, fromStates)
					merged[string(kb)] = g
				}
				if err := h.foldInto(g, r, fromStates); err != nil {
					return fail(err)
				}
			}
			rd.close()
		}
		readers = readers[:0]
		if respill != nil {
			rd, err := respill.finish()
			if err != nil {
				return nil, err
			}
			readers = append(readers, rd)
		}
	}
	out := make([]types.Row, 0, len(merged))
	for _, g := range merged {
		out = append(out, h.emitGroup(g))
	}
	return out, nil
}

// Next implements Operator.
func (h *HashAggregate) Next() (types.Row, bool, error) {
	if !h.prepared {
		if err := h.prepare(); err != nil {
			return nil, false, err
		}
	}
	if h.pos >= len(h.results) {
		return nil, false, nil
	}
	r := h.results[h.pos]
	h.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator, serving the prepared results in
// slabs. The slab is a window of h.results that iteration has retired by
// the time the caller holds it, so in-place compaction is safe.
func (h *HashAggregate) NextBatch() ([]types.Row, bool, error) {
	if !h.prepared {
		if err := h.prepare(); err != nil {
			return nil, false, err
		}
	}
	if h.pos >= len(h.results) {
		return nil, false, nil
	}
	end := h.pos + h.ctx.batchRows()
	if end > len(h.results) {
		end = len(h.results)
	}
	out := h.results[h.pos:end]
	h.pos = end
	return out, true, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error { return h.In.Close() }

// validateAggSchema asserts partial-state arity for Merge/Final inputs.
func validateAggSchema(in types.Schema, groupBy []expr.Expr, specs []AggSpec) error {
	want := len(groupBy) + len(specs)*partialCols
	if in.Len() != want {
		return fmt.Errorf("exec: merge aggregate input has %d columns, want %d", in.Len(), want)
	}
	return nil
}
