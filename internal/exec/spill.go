package exec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/types"
)

// spillWriter streams rows to a temp file (length-prefixed encoded rows).
type spillWriter struct {
	ctx   *Ctx
	f     *os.File
	w     *bufio.Writer
	bytes int64
	rows  int64
}

func newSpillWriter(ctx *Ctx, pattern string) (*spillWriter, error) {
	if ctx == nil {
		return nil, fmt.Errorf("exec: spill without context")
	}
	f, err := ctx.tempFile(pattern)
	if err != nil {
		return nil, err
	}
	return &spillWriter{ctx: ctx, f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

func (s *spillWriter) write(r types.Row) error {
	enc := types.AppendRow(nil, r)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(enc)))
	if _, err := s.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.w.Write(enc); err != nil {
		return err
	}
	s.bytes += int64(len(enc) + 4)
	s.rows++
	s.ctx.SpillBytes.Add(int64(len(enc) + 4))
	return nil
}

// finish flushes and rewinds, returning a reader over the written rows.
// The file is unlinked on reader close.
func (s *spillWriter) finish() (*spillReader, error) {
	if err := s.w.Flush(); err != nil {
		return nil, err
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return &spillReader{f: s.f, r: bufio.NewReaderSize(s.f, 1<<16)}, nil
}

// abort discards the spill file.
func (s *spillWriter) abort() {
	name := s.f.Name()
	s.f.Close()
	os.Remove(name)
}

// spillReader streams rows back from a spill file.
type spillReader struct {
	f *os.File
	r *bufio.Reader
}

func (s *spillReader) next() (types.Row, bool, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(s.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("exec: spill read: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	buf := make([]byte, n)
	if _, err := io.ReadFull(s.r, buf); err != nil {
		return nil, false, fmt.Errorf("exec: spill read body: %w", err)
	}
	row, _, err := types.DecodeRow(buf)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

func (s *spillReader) close() {
	name := s.f.Name()
	s.f.Close()
	os.Remove(name)
}
