package exec

import (
	"container/heap"
	"sort"

	"repro/internal/types"
)

// SortKey describes one ORDER BY term.
type SortKey struct {
	Col  int // input column offset
	Desc bool
}

// compareByKeys orders rows by the keys.
func compareByKeys(a, b types.Row, keys []SortKey) int {
	for _, k := range keys {
		c := types.Compare(a[k.Col], b[k.Col])
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// Sort is an external merge sort: it buffers up to MemRows rows, writes
// sorted runs to spill files, and merges them with a loser-tree-free k-way
// heap merge. This is the leaf-level phase of the paper's distributed
// n-way merge sort; the tree topology's upper levels use MergeReceive.
type Sort struct {
	In   Operator
	Keys []SortKey
	ctx  *Ctx

	mem      []types.Row
	runs     []*spillReader
	merged   *mergeHeap
	prepared bool
	pos      int
}

// NewSort builds a sort operator.
func NewSort(ctx *Ctx, in Operator, keys []SortKey) *Sort {
	return &Sort{In: in, Keys: keys, ctx: ctx}
}

// Schema implements Operator.
func (s *Sort) Schema() types.Schema { return s.In.Schema() }

// Open implements Operator.
func (s *Sort) Open() error {
	s.mem, s.runs, s.merged, s.prepared, s.pos = nil, nil, nil, false, 0
	return s.In.Open()
}

func (s *Sort) sortMem() {
	sort.SliceStable(s.mem, func(i, j int) bool {
		return compareByKeys(s.mem[i], s.mem[j], s.Keys) < 0
	})
}

func (s *Sort) spillRun() error {
	s.sortMem()
	w, err := newSpillWriter(s.ctx, "sort-run-*")
	if err != nil {
		return err
	}
	for _, r := range s.mem {
		if err := w.write(r); err != nil {
			w.abort()
			return err
		}
	}
	rd, err := w.finish()
	if err != nil {
		return err
	}
	s.runs = append(s.runs, rd)
	s.mem = s.mem[:0]
	return nil
}

func (s *Sort) prepare() error {
	for {
		r, ok, err := s.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if s.ctx != nil {
			s.ctx.RowsProcessed.Add(1)
			s.ctx.addState(int64(types.RowEncodedSize(r)))
		}
		s.mem = append(s.mem, r)
		if s.ctx != nil && s.ctx.MemRows > 0 && len(s.mem) >= s.ctx.MemRows {
			if err := s.spillRun(); err != nil {
				return err
			}
		}
	}
	if len(s.runs) == 0 {
		// Pure in-memory sort.
		s.sortMem()
		s.prepared = true
		return nil
	}
	// Final in-memory batch becomes one more run (kept in memory).
	s.sortMem()
	s.merged = &mergeHeap{keys: s.Keys}
	for _, run := range s.runs {
		r, ok, err := run.next()
		if err != nil {
			return err
		}
		if ok {
			heap.Push(s.merged, mergeItem{row: r, src: run})
		} else {
			run.close()
		}
	}
	s.prepared = true
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (types.Row, bool, error) {
	if !s.prepared {
		if err := s.prepare(); err != nil {
			return nil, false, err
		}
	}
	if s.merged == nil {
		if s.pos >= len(s.mem) {
			return nil, false, nil
		}
		r := s.mem[s.pos]
		s.pos++
		return r, true, nil
	}
	// Merge the spill runs with the resident final batch.
	var memTop types.Row
	if s.pos < len(s.mem) {
		memTop = s.mem[s.pos]
	}
	if s.merged.Len() == 0 {
		if memTop == nil {
			return nil, false, nil
		}
		s.pos++
		return memTop, true, nil
	}
	top := s.merged.items[0]
	if memTop != nil && compareByKeys(memTop, top.row, s.Keys) <= 0 {
		s.pos++
		return memTop, true, nil
	}
	item := heap.Pop(s.merged).(mergeItem)
	next, ok, err := item.src.next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		heap.Push(s.merged, mergeItem{row: next, src: item.src})
	} else {
		item.src.close()
	}
	return item.row, true, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	if s.merged != nil {
		for _, it := range s.merged.items {
			it.src.close()
		}
		s.merged = nil
	}
	return s.In.Close()
}

type mergeItem struct {
	row types.Row
	src *spillReader
}

type mergeHeap struct {
	items []mergeItem
	keys  []SortKey
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	return compareByKeys(h.items[i].row, h.items[j].row, h.keys) < 0
}
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// TopK keeps the best k rows by the sort keys using a bounded heap — the
// paper's LIMIT+ORDER BY implementation: each worker maintains a heap of
// its local top-k and the coordinator merges them.
type TopK struct {
	In   Operator
	Keys []SortKey
	K    int
	ctx  *Ctx

	results  []types.Row
	pos      int
	prepared bool
}

// NewTopK builds a top-k operator.
func NewTopK(ctx *Ctx, in Operator, keys []SortKey, k int) *TopK {
	return &TopK{In: in, Keys: keys, K: k, ctx: ctx}
}

// Schema implements Operator.
func (t *TopK) Schema() types.Schema { return t.In.Schema() }

// Open implements Operator.
func (t *TopK) Open() error {
	t.results, t.pos, t.prepared = nil, 0, false
	return t.In.Open()
}

func (t *TopK) prepare() error {
	// boundedHeap holds the current top-k with the WORST row at the root,
	// so a newly arriving better row replaces the root — exactly the
	// paper's description (min-heap for descending order).
	h := &boundedHeap{keys: t.Keys}
	for {
		r, ok, err := t.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if t.ctx != nil {
			t.ctx.RowsProcessed.Add(1)
		}
		if h.Len() < t.K {
			heap.Push(h, r)
			continue
		}
		if compareByKeys(r, h.rows[0], t.Keys) < 0 {
			h.rows[0] = r
			heap.Fix(h, 0)
		}
	}
	t.results = make([]types.Row, h.Len())
	for i := len(t.results) - 1; i >= 0; i-- {
		t.results[i] = heap.Pop(h).(types.Row)
	}
	t.prepared = true
	return nil
}

// Next implements Operator.
func (t *TopK) Next() (types.Row, bool, error) {
	if !t.prepared {
		if err := t.prepare(); err != nil {
			return nil, false, err
		}
	}
	if t.pos >= len(t.results) {
		return nil, false, nil
	}
	r := t.results[t.pos]
	t.pos++
	return r, true, nil
}

// Close implements Operator.
func (t *TopK) Close() error { return t.In.Close() }

// boundedHeap orders rows so the WORST (by sort keys) is at the root.
type boundedHeap struct {
	rows []types.Row
	keys []SortKey
}

func (h *boundedHeap) Len() int { return len(h.rows) }
func (h *boundedHeap) Less(i, j int) bool {
	return compareByKeys(h.rows[i], h.rows[j], h.keys) > 0
}
func (h *boundedHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *boundedHeap) Push(x interface{}) { h.rows = append(h.rows, x.(types.Row)) }
func (h *boundedHeap) Pop() interface{} {
	old := h.rows
	n := len(old)
	r := old[n-1]
	h.rows = old[:n-1]
	return r
}
