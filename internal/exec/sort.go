package exec

import (
	"container/heap"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/types"
)

// SortKey describes one ORDER BY term.
type SortKey struct {
	Col  int // input column offset
	Desc bool
}

// compareByKeys orders rows by the keys.
func compareByKeys(a, b types.Row, keys []SortKey) int {
	for _, k := range keys {
		c := types.Compare(a[k.Col], b[k.Col])
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// Sort is an external merge sort: it buffers up to MemRows rows, writes
// sorted runs to spill files, and merges them with a loser-tree-free k-way
// heap merge. This is the leaf-level phase of the paper's distributed
// n-way merge sort; the tree topology's upper levels use MergeReceive.
type Sort struct {
	In   Operator
	Keys []SortKey
	// Parallel is the desired run-generation parallelism. Values above 1
	// make prepare acquire extra workers from the Ctx budget and generate
	// sorted runs concurrently; 0/1 keep the serial sort. The parallel
	// order equals the serial order except that rows with fully equal sort
	// keys may tie-break differently (run assignment is nondeterministic).
	Parallel int
	// Trace, when non-nil, records the granted worker count.
	Trace *obs.Span
	ctx   *Ctx

	mem      []types.Row
	runs     []*spillReader
	merged   *mergeHeap
	prepared bool
	pos      int
}

// NewSort builds a sort operator.
func NewSort(ctx *Ctx, in Operator, keys []SortKey) *Sort {
	return &Sort{In: in, Keys: keys, ctx: ctx}
}

// Schema implements Operator.
func (s *Sort) Schema() types.Schema { return s.In.Schema() }

// Open implements Operator.
func (s *Sort) Open() error {
	s.mem, s.runs, s.merged, s.prepared, s.pos = nil, nil, nil, false, 0
	return s.In.Open()
}

func (s *Sort) sortMem() {
	sort.SliceStable(s.mem, func(i, j int) bool {
		return compareByKeys(s.mem[i], s.mem[j], s.Keys) < 0
	})
}

func (s *Sort) spillRun() error {
	s.sortMem()
	w, err := newSpillWriter(s.ctx, "sort-run-*")
	if err != nil {
		return err
	}
	for _, r := range s.mem {
		if err := w.write(r); err != nil {
			w.abort()
			return err
		}
	}
	rd, err := w.finish()
	if err != nil {
		return err
	}
	s.runs = append(s.runs, rd)
	s.mem = s.mem[:0]
	return nil
}

func (s *Sort) prepare() error {
	degree := 1
	if s.Parallel > 1 {
		degree = s.ctx.AcquireWorkers(s.Parallel)
		defer s.ctx.ReleaseWorkers(degree)
	}
	if degree > 1 {
		return s.prepareParallel(degree)
	}
	for {
		r, ok, err := s.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if s.ctx != nil {
			s.ctx.RowsProcessed.Add(1)
			s.ctx.addState(int64(types.RowEncodedSize(r)))
		}
		s.mem = append(s.mem, r)
		if s.ctx != nil && s.ctx.MemRows > 0 && len(s.mem) >= s.ctx.MemRows {
			if err := s.spillRun(); err != nil {
				return err
			}
		}
	}
	if len(s.runs) == 0 {
		// Pure in-memory sort.
		s.sortMem()
		s.prepared = true
		return nil
	}
	// Final in-memory batch becomes one more run (kept in memory).
	s.sortMem()
	s.merged = &mergeHeap{keys: s.Keys}
	for _, run := range s.runs {
		r, ok, err := run.next()
		if err != nil {
			return err
		}
		if ok {
			heap.Push(s.merged, mergeItem{row: r, src: run})
		} else {
			run.close()
		}
	}
	s.prepared = true
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (types.Row, bool, error) {
	if !s.prepared {
		if err := s.prepare(); err != nil {
			return nil, false, err
		}
	}
	if s.merged == nil {
		if s.pos >= len(s.mem) {
			return nil, false, nil
		}
		r := s.mem[s.pos]
		s.pos++
		return r, true, nil
	}
	// Merge the spill runs with the resident final batch.
	var memTop types.Row
	if s.pos < len(s.mem) {
		memTop = s.mem[s.pos]
	}
	if s.merged.Len() == 0 {
		if memTop == nil {
			return nil, false, nil
		}
		s.pos++
		return memTop, true, nil
	}
	top := s.merged.items[0]
	if memTop != nil && compareByKeys(memTop, top.row, s.Keys) <= 0 {
		s.pos++
		return memTop, true, nil
	}
	item := heap.Pop(s.merged).(mergeItem)
	next, ok, err := item.src.next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		heap.Push(s.merged, mergeItem{row: next, src: item.src})
	} else {
		item.src.close()
	}
	return item.row, true, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	if s.merged != nil {
		for _, it := range s.merged.items {
			it.src.close()
		}
		s.merged = nil
	}
	return s.In.Close()
}

// runSource is one sorted run feeding the k-way merge: a spill file, a
// worker's resident final batch, or a prefetching decoder over a spill file.
type runSource interface {
	next() (types.Row, bool, error)
	close()
}

type mergeItem struct {
	row types.Row
	src runSource
}

type mergeHeap struct {
	items []mergeItem
	keys  []SortKey
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	return compareByKeys(h.items[i].row, h.items[j].row, h.keys) < 0
}
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// memRun serves a sorted resident batch as a merge source.
type memRun struct {
	rows []types.Row
	pos  int
}

func (m *memRun) next() (types.Row, bool, error) {
	if m.pos >= len(m.rows) {
		return nil, false, nil
	}
	r := m.rows[m.pos]
	m.pos++
	return r, true, nil
}

func (m *memRun) close() {}

// prefetchRun decodes a spill run ahead of the k-way merge on its own
// goroutine, shipping slabs through a bounded channel — without it the
// merge's critical path pays every run's read+decode serially, which eats
// most of what parallel run generation won.
type prefetchRun struct {
	batches chan []types.Row
	errCh   chan error
	stop    chan struct{}
	cur     []types.Row
	pos     int
	closed  bool
}

func newPrefetchRun(src *spillReader, slab int) *prefetchRun {
	if slab <= 0 {
		slab = DefaultBatchRows
	}
	p := &prefetchRun{
		batches: make(chan []types.Row, 2),
		errCh:   make(chan error, 1),
		stop:    make(chan struct{}),
	}
	go func() {
		defer close(p.batches)
		defer src.close()
		buf := make([]types.Row, 0, slab)
		for {
			r, ok, err := src.next()
			if err != nil {
				select {
				case p.errCh <- err:
				case <-p.stop:
					// Consumer closed early; nobody will read the error.
				}
				return
			}
			if !ok {
				break
			}
			buf = append(buf, r)
			if len(buf) >= slab {
				select {
				case p.batches <- buf:
				case <-p.stop:
					return
				}
				buf = make([]types.Row, 0, slab)
			}
		}
		if len(buf) > 0 {
			select {
			case p.batches <- buf:
			case <-p.stop:
			}
		}
	}()
	return p
}

func (p *prefetchRun) next() (types.Row, bool, error) {
	for p.pos >= len(p.cur) {
		b, ok := <-p.batches
		if !ok {
			select {
			case err := <-p.errCh:
				return nil, false, err
			default:
				return nil, false, nil
			}
		}
		p.cur, p.pos = b, 0
	}
	r := p.cur[p.pos]
	p.pos++
	return r, true, nil
}

func (p *prefetchRun) close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.stop)
	// Drain so the decoder goroutine can exit. Bounded: the decoder
	// observes the closed stop channel and closes batches.
	go func(ch chan []types.Row) {
		for range ch {
		}
	}(p.batches)
}

// sortWorker is one parallel run-generation worker's state.
type sortWorker struct {
	runs []*spillReader
	mem  []types.Row
}

// prepareParallel generates sorted runs with degree workers: the input is
// fanned out slab-at-a-time, each worker accumulates its share, spills one
// sorted run whenever its share of the memory budget fills, and sorts its
// final resident batch in memory. All runs — spilled ones behind prefetching
// decoders, resident batches directly — feed the same k-way heap merge the
// serial path uses; s.mem stays empty so Next's resident-batch special case
// is inert.
func (s *Sort) prepareParallel(degree int) error {
	localBudget := 0
	if s.ctx != nil && s.ctx.MemRows > 0 {
		localBudget = s.ctx.MemRows / degree
		if localBudget < 1 {
			localBudget = 1
		}
	}
	workers := make([]*sortWorker, degree)
	batches := make(chan []types.Row, degree)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	errCh := make(chan error, degree)
	var wg sync.WaitGroup
	for w := 0; w < degree; w++ {
		sw := &sortWorker{}
		workers[w] = sw
		wg.Add(1)
		go func(sw *sortWorker) {
			defer wg.Done()
			sortLocal := func() {
				sort.SliceStable(sw.mem, func(i, j int) bool {
					return compareByKeys(sw.mem[i], sw.mem[j], s.Keys) < 0
				})
			}
			spillLocal := func() error {
				sortLocal()
				sp, err := newSpillWriter(s.ctx, "sort-run-*")
				if err != nil {
					return err
				}
				for _, r := range sw.mem {
					if err := sp.write(r); err != nil {
						sp.abort()
						return err
					}
				}
				rd, err := sp.finish()
				if err != nil {
					return err
				}
				sw.runs = append(sw.runs, rd)
				sw.mem = sw.mem[:0]
				return nil
			}
			for {
				select {
				case <-stop:
					return
				case batch, ok := <-batches:
					if !ok {
						sortLocal()
						return
					}
					for _, r := range batch {
						if s.ctx != nil {
							s.ctx.RowsProcessed.Add(1)
							s.ctx.addState(int64(types.RowEncodedSize(r)))
						}
						sw.mem = append(sw.mem, r)
						if localBudget > 0 && len(sw.mem) >= localBudget {
							if err := spillLocal(); err != nil {
								errCh <- err
								halt()
								return
							}
						}
					}
				}
			}
		}(sw)
	}
	feedErr := feedRowBatches(s.ctx, s.In, s.ctx.batchRows(), batches, stop)
	close(batches)
	wg.Wait()
	var firstErr error
	select {
	case firstErr = <-errCh:
	default:
		firstErr = feedErr
	}
	if firstErr != nil {
		for _, sw := range workers {
			for _, rd := range sw.runs {
				rd.close()
			}
		}
		return firstErr
	}
	s.mem = nil
	s.merged = &mergeHeap{keys: s.Keys}
	push := func(src runSource) error {
		r, ok, err := src.next()
		if err != nil {
			src.close()
			return err
		}
		if ok {
			heap.Push(s.merged, mergeItem{row: r, src: src})
		} else {
			src.close()
		}
		return nil
	}
	slab := s.ctx.batchRows()
	for _, sw := range workers {
		for _, rd := range sw.runs {
			if err := push(newPrefetchRun(rd, slab)); err != nil {
				return err
			}
		}
		if len(sw.mem) > 0 {
			if err := push(&memRun{rows: sw.mem}); err != nil {
				return err
			}
		}
	}
	s.Trace.AddWorkers(int64(degree))
	s.prepared = true
	return nil
}

// TopK keeps the best k rows by the sort keys using a bounded heap — the
// paper's LIMIT+ORDER BY implementation: each worker maintains a heap of
// its local top-k and the coordinator merges them.
type TopK struct {
	In   Operator
	Keys []SortKey
	K    int
	ctx  *Ctx

	results  []types.Row
	pos      int
	prepared bool
}

// NewTopK builds a top-k operator.
func NewTopK(ctx *Ctx, in Operator, keys []SortKey, k int) *TopK {
	return &TopK{In: in, Keys: keys, K: k, ctx: ctx}
}

// Schema implements Operator.
func (t *TopK) Schema() types.Schema { return t.In.Schema() }

// Open implements Operator.
func (t *TopK) Open() error {
	t.results, t.pos, t.prepared = nil, 0, false
	return t.In.Open()
}

func (t *TopK) prepare() error {
	// boundedHeap holds the current top-k with the WORST row at the root,
	// so a newly arriving better row replaces the root — exactly the
	// paper's description (min-heap for descending order).
	h := &boundedHeap{keys: t.Keys}
	for {
		r, ok, err := t.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if t.ctx != nil {
			t.ctx.RowsProcessed.Add(1)
		}
		if h.Len() < t.K {
			heap.Push(h, r)
			continue
		}
		if compareByKeys(r, h.rows[0], t.Keys) < 0 {
			h.rows[0] = r
			heap.Fix(h, 0)
		}
	}
	t.results = make([]types.Row, h.Len())
	for i := len(t.results) - 1; i >= 0; i-- {
		t.results[i] = heap.Pop(h).(types.Row)
	}
	t.prepared = true
	return nil
}

// Next implements Operator.
func (t *TopK) Next() (types.Row, bool, error) {
	if !t.prepared {
		if err := t.prepare(); err != nil {
			return nil, false, err
		}
	}
	if t.pos >= len(t.results) {
		return nil, false, nil
	}
	r := t.results[t.pos]
	t.pos++
	return r, true, nil
}

// Close implements Operator.
func (t *TopK) Close() error { return t.In.Close() }

// boundedHeap orders rows so the WORST (by sort keys) is at the root.
type boundedHeap struct {
	rows []types.Row
	keys []SortKey
}

func (h *boundedHeap) Len() int { return len(h.rows) }
func (h *boundedHeap) Less(i, j int) bool {
	return compareByKeys(h.rows[i], h.rows[j], h.keys) > 0
}
func (h *boundedHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *boundedHeap) Push(x interface{}) { h.rows = append(h.rows, x.(types.Row)) }
func (h *boundedHeap) Pop() interface{} {
	old := h.rows
	n := len(old)
	r := old[n-1]
	h.rows = old[:n-1]
	return r
}
