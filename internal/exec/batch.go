package exec

import (
	"repro/internal/types"
)

// This file defines the vectorized execution path. The engine keeps its
// Volcano Operator interface — every operator still works row-at-a-time —
// but hot pipeline operators (scans, Filter, Project, HashAggregate,
// HashJoin, the exchange operators) additionally implement BatchOperator
// and move rows in slabs of Ctx.BatchRows at a time. Batching amortizes
// the two dominant per-row costs of the row engine: the channel select in
// every producer goroutine (scan threads, shuffle receive loops, probe
// workers) and the three interface calls per row per operator.
//
// Consumers pick the batch path with nativeBatch/ToBatch; plans mix both
// paths freely because the adapters below bridge in either direction.

// Batch size defaults. DefaultBatchRows sizes operator slabs;
// DefaultWireBatchRows sizes exchange messages (smaller, so a shuffle
// keeps many destinations' buffers resident without ballooning memory).
// Both are overridden together by Ctx.BatchRows.
const (
	DefaultBatchRows     = 1024
	DefaultWireBatchRows = 128
)

// BatchOperator is the vectorized iterator. NextBatch returns a non-empty
// slab of rows, or ok=false on exhaustion.
//
// Ownership contract: the returned slice is valid only until the next
// NextBatch or Close call, and the CALLER owns it in the meantime — it may
// compact, reorder, or truncate the slice in place (Filter does). Producers
// must therefore never return a slice that aliases state they re-read
// (fresh slabs, retired result regions, and reused scratch slabs are all
// fine). The row values inside a batch are immutable and may be retained
// indefinitely.
type BatchOperator interface {
	// Schema describes the rows NextBatch returns.
	Schema() types.Schema
	// Open prepares the operator (and its inputs) for iteration.
	Open() error
	// NextBatch returns the next slab of rows; ok=false signals
	// exhaustion. Implementations never return an empty slab with ok=true.
	NextBatch() ([]types.Row, bool, error)
	// Close releases resources. Close is idempotent.
	Close() error
}

// nativeBatch reports whether an operator exposes the batch path directly.
func nativeBatch(op Operator) (BatchOperator, bool) {
	b, ok := op.(BatchOperator)
	return b, ok
}

// ToBatch adapts a row operator to the batch interface. Operators that are
// already batch-native are returned unchanged; otherwise rows are pulled
// one at a time into a reusable slab of the given size (<=0 selects
// DefaultBatchRows). The adapter itself is row-at-a-time glue — it exists
// so batch consumers accept any input, not to make the input faster.
func ToBatch(in Operator, size int) BatchOperator {
	if b, ok := nativeBatch(in); ok {
		return b
	}
	if size <= 0 {
		size = DefaultBatchRows
	}
	return &rowToBatch{in: in, size: size}
}

// FromBatch adapts a batch operator to the row interface. Batch operators
// that already serve rows are returned unchanged; otherwise Next iterates
// the current slab.
func FromBatch(in BatchOperator) Operator {
	if op, ok := in.(Operator); ok {
		return op
	}
	return &batchToRow{in: in}
}

// RowOnly hides an operator's batch interface, forcing every consumer onto
// the row path. It exists for tests and benchmarks that need the scalar
// engine as a baseline; plans never insert it.
func RowOnly(op Operator) Operator {
	return rowOnlyOp{op}
}

// rowOnlyOp embeds the interface value, so its method set carries exactly
// the Operator methods and a BatchOperator type assertion fails.
type rowOnlyOp struct {
	Operator
}

// rowToBatch is the ToBatch adapter.
type rowToBatch struct {
	in   Operator
	size int
	slab []types.Row
}

// Schema implements BatchOperator.
func (a *rowToBatch) Schema() types.Schema { return a.in.Schema() }

// Open implements BatchOperator.
func (a *rowToBatch) Open() error { return a.in.Open() }

// NextBatch implements BatchOperator.
func (a *rowToBatch) NextBatch() ([]types.Row, bool, error) {
	if a.slab == nil {
		a.slab = make([]types.Row, 0, a.size)
	}
	out := a.slab[:0]
	for len(out) < a.size {
		r, ok, err := a.in.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		out = append(out, r)
	}
	a.slab = out
	if len(out) == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// Close implements BatchOperator.
func (a *rowToBatch) Close() error { return a.in.Close() }

// batchToRow is the FromBatch adapter.
type batchToRow struct {
	in  BatchOperator
	cur []types.Row
	pos int
}

// Schema implements Operator.
func (a *batchToRow) Schema() types.Schema { return a.in.Schema() }

// Open implements Operator.
func (a *batchToRow) Open() error {
	a.cur, a.pos = nil, 0
	return a.in.Open()
}

// Next implements Operator.
func (a *batchToRow) Next() (types.Row, bool, error) {
	for a.pos >= len(a.cur) {
		b, ok, err := a.in.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		//lint:ignore slabown row cursor: this adapter is the slab's owner and drains cur before its next NextBatch call
		a.cur, a.pos = b, 0
	}
	r := a.cur[a.pos]
	a.pos++
	return r, true, nil
}

// Close implements Operator.
func (a *batchToRow) Close() error { return a.in.Close() }
