package exec

import (
	"time"

	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/types"
	"repro/internal/vec"
)

// Traced wraps an operator and charges its Open/Next/Close time and output
// rows to an obs.Span. Wrappers are only created when a query runs with
// tracing enabled — the disabled path builds the plain operator tree, so
// hot loops carry zero tracing cost (see BenchmarkSpanDisabled in obs).
type Traced struct {
	in Operator
	sp *obs.Span
}

// NewTraced wraps in with span sp. If sp is nil the operator is returned
// unwrapped. A batch-native input gets a wrapper that is itself
// batch-native — embedding alone would hide NextBatch behind the Operator
// interface and silently drop the whole plan to the row path. Likewise a
// vector-native input gets a wrapper exposing NextVec, so tracing never
// demotes a vector plan to boxed rows.
func NewTraced(in Operator, sp *obs.Span) Operator {
	if sp == nil {
		return in
	}
	t := &Traced{in: in, sp: sp}
	if vin, ok := nativeVec(in); ok {
		tv := &tracedVec{Traced: t, vin: vin}
		if bin, ok := nativeBatch(in); ok {
			return &tracedVecBatch{tracedVec: tv, bin: bin}
		}
		return tv
	}
	if bin, ok := nativeBatch(in); ok {
		return &tracedBatch{Traced: t, bin: bin}
	}
	return t
}

// Unwrap returns the operator beneath a Traced wrapper (or op itself).
// Plan-shape assertions and re-wrapping logic see through tracing with it.
func Unwrap(op Operator) Operator {
	if t, ok := op.(*tracedVecBatch); ok {
		return t.in
	}
	if t, ok := op.(*tracedVec); ok {
		return t.in
	}
	if t, ok := op.(*tracedBatch); ok {
		return t.in
	}
	if t, ok := op.(*Traced); ok {
		return t.in
	}
	return op
}

// Span returns the span this wrapper charges into.
func (t *Traced) Span() *obs.Span { return t.sp }

// Schema returns the wrapped operator's schema.
func (t *Traced) Schema() types.Schema { return t.in.Schema() }

// Open opens the wrapped operator, charging the time to the span.
func (t *Traced) Open() error {
	start := time.Now()
	err := t.in.Open()
	t.sp.AddWall(time.Since(start))
	return err
}

// Next pulls one row, charging time and counting output rows.
func (t *Traced) Next() (types.Row, bool, error) {
	start := time.Now()
	row, ok, err := t.in.Next()
	t.sp.AddWall(time.Since(start))
	if ok && err == nil {
		t.sp.AddRowsOut(1)
	}
	return row, ok, err
}

// Close closes the wrapped operator and finishes its span: Close is the
// last lifecycle call on an operator, so the span's counters are final.
func (t *Traced) Close() error {
	start := time.Now()
	err := t.in.Close()
	t.sp.AddWall(time.Since(start))
	t.sp.Finish()
	return err
}

// tracedBatch is the Traced wrapper for batch-native operators: Next and
// the lifecycle methods come from Traced; NextBatch charges the slab's
// rows and counts the slab, so EXPLAIN ANALYZE shows batching in effect.
type tracedBatch struct {
	*Traced
	bin BatchOperator
}

// NextBatch pulls one slab, charging time and counting rows and batches.
func (t *tracedBatch) NextBatch() ([]types.Row, bool, error) {
	start := time.Now()
	b, ok, err := t.bin.NextBatch()
	t.sp.AddWall(time.Since(start))
	if ok && err == nil {
		t.sp.AddRowsOut(int64(len(b)))
		t.sp.AddBatches(1)
	}
	return b, ok, err
}

// tracedVec is the Traced wrapper for vector-native operators: NextVec
// charges time, the batch's active rows, and the vector-batch counter, so
// EXPLAIN ANALYZE shows the vector path in effect.
type tracedVec struct {
	*Traced
	vin VecOperator
}

// NextVec pulls one vector batch, charging time, rows, and batch count.
func (t *tracedVec) NextVec() (*vec.Batch, bool, error) {
	start := time.Now()
	b, ok, err := t.vin.NextVec()
	t.sp.AddWall(time.Since(start))
	if ok && err == nil {
		t.sp.AddRowsOut(int64(b.Rows()))
		t.sp.AddVecBatches(1)
	}
	return b, ok, err
}

// tracedVecBatch additionally forwards the batch face of an operator that
// is both vector- and batch-native, so consumers on either path keep their
// native protocol through the tracing wrapper.
type tracedVecBatch struct {
	*tracedVec
	bin BatchOperator
}

// NextBatch pulls one slab, charging time and counting rows and batches.
func (t *tracedVecBatch) NextBatch() ([]types.Row, bool, error) {
	start := time.Now()
	b, ok, err := t.bin.NextBatch()
	t.sp.AddWall(time.Since(start))
	if ok && err == nil {
		t.sp.AddRowsOut(int64(len(b)))
		t.sp.AddBatches(1)
	}
	return b, ok, err
}

// CountingEndpoint wraps a network.Endpoint and attributes outbound bytes
// and messages to a span, mirroring the Meter's semantics (self-delivery
// is loopback, not network traffic). Exchange operators built for a traced
// query send through one of these, so per-operator net counters sum to the
// same total the fabric meter reports for the query.
type CountingEndpoint struct {
	network.Endpoint
	sp *obs.Span
}

// NewCountingEndpoint wraps ep; with a nil span, ep is returned as-is.
func NewCountingEndpoint(ep network.Endpoint, sp *obs.Span) network.Endpoint {
	if sp == nil {
		return ep
	}
	return &CountingEndpoint{Endpoint: ep, sp: sp}
}

// Send counts the payload against the span, then forwards to the real
// endpoint.
func (c *CountingEndpoint) Send(to, dest int, channel string, payload []byte) error {
	if to != c.Endpoint.NodeID() {
		c.sp.AddNet(int64(len(payload)), 1)
	}
	return c.Endpoint.Send(to, dest, channel, payload)
}
