package exec

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

func benchRows(n int, keys int) []types.Row {
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(i % keys)),
			types.NewFloat(float64(i) * 1.5),
			types.NewString(fmt.Sprintf("payload-%06d", i)),
		}
	}
	return rows
}

func BenchmarkHashJoinBuildProbe(b *testing.B) {
	sch := intSchema("k", "v", "s")
	probeRows := benchRows(50000, 1000)
	buildRows := benchRows(1000, 1000)
	b.SetBytes(int64(len(probeRows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := NewHashJoin(nil, NewSource(sch, probeRows), NewSource(sch, buildRows),
			ColRefs(0), ColRefs(0), JoinInner, nil, 2)
		if _, err := Collect(j); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashAggregateThroughput(b *testing.B) {
	sch := intSchema("k", "v", "s")
	rows := benchRows(100000, 64)
	specs := []AggSpec{
		{Kind: AggSum, Arg: ColRefs(1)[0], Name: "s"},
		{Kind: AggCount, Name: "c"},
	}
	b.SetBytes(int64(len(rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := NewHashAggregate(nil, NewSource(sch, rows), ColRefs(0), specs, AggComplete)
		if _, err := Collect(agg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortInMemory(b *testing.B) {
	sch := intSchema("k", "v", "s")
	rows := benchRows(100000, 1<<30)
	b.SetBytes(int64(len(rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSort(nil, NewSource(sch, rows), []SortKey{{Col: 1, Desc: true}})
		if _, err := Collect(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortExternal(b *testing.B) {
	ctx := NewCtx(b.TempDir(), 10000)
	sch := intSchema("k", "v", "s")
	rows := benchRows(100000, 1<<30)
	b.SetBytes(int64(len(rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSort(ctx, NewSource(sch, rows), []SortKey{{Col: 1}})
		if _, err := Collect(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKVsFullSort(b *testing.B) {
	sch := intSchema("k", "v", "s")
	rows := benchRows(100000, 1<<30)
	b.Run("topk-10", func(b *testing.B) {
		b.SetBytes(int64(len(rows)))
		for i := 0; i < b.N; i++ {
			tk := NewTopK(nil, NewSource(sch, rows), []SortKey{{Col: 1, Desc: true}}, 10)
			if _, err := Collect(tk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sort-then-limit", func(b *testing.B) {
		b.SetBytes(int64(len(rows)))
		for i := 0; i < b.N; i++ {
			s := NewLimit(NewSort(nil, NewSource(sch, rows), []SortKey{{Col: 1, Desc: true}}), 10, 0)
			if _, err := Collect(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}
