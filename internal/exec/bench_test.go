package exec

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/types"
	"repro/internal/vec"
)

func benchRows(n int, keys int) []types.Row {
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(i % keys)),
			types.NewFloat(float64(i) * 1.5),
			types.NewString(fmt.Sprintf("payload-%06d", i)),
		}
	}
	return rows
}

func BenchmarkHashJoinBuildProbe(b *testing.B) {
	sch := intSchema("k", "v", "s")
	probeRows := benchRows(50000, 1000)
	buildRows := benchRows(1000, 1000)
	b.SetBytes(int64(len(probeRows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := NewHashJoin(nil, NewSource(sch, probeRows), NewSource(sch, buildRows),
			ColRefs(0), ColRefs(0), JoinInner, nil, 2)
		if _, err := Collect(j); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashAggregateThroughput(b *testing.B) {
	sch := intSchema("k", "v", "s")
	rows := benchRows(100000, 64)
	specs := []AggSpec{
		{Kind: AggSum, Arg: ColRefs(1)[0], Name: "s"},
		{Kind: AggCount, Name: "c"},
	}
	b.SetBytes(int64(len(rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := NewHashAggregate(nil, NewSource(sch, rows), ColRefs(0), specs, AggComplete)
		if _, err := Collect(agg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortInMemory(b *testing.B) {
	sch := intSchema("k", "v", "s")
	rows := benchRows(100000, 1<<30)
	b.SetBytes(int64(len(rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSort(nil, NewSource(sch, rows), []SortKey{{Col: 1, Desc: true}})
		if _, err := Collect(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortExternal(b *testing.B) {
	ctx := NewCtx(b.TempDir(), 10000)
	sch := intSchema("k", "v", "s")
	rows := benchRows(100000, 1<<30)
	b.SetBytes(int64(len(rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSort(ctx, NewSource(sch, rows), []SortKey{{Col: 1}})
		if _, err := Collect(s); err != nil {
			b.Fatal(err)
		}
	}
}

var benchLineitem struct {
	once sync.Once
	rows []types.Row
	sch  types.Schema
}

// benchLineitemData generates the SF0.05 lineitem table once per process.
func benchLineitemData() ([]types.Row, types.Schema) {
	benchLineitem.once.Do(func() {
		d := tpch.Generate(0.05, 1)
		benchLineitem.rows = d.Lineitem
		cols := make([]types.Column, len(d.Lineitem[0]))
		for i, v := range d.Lineitem[0] {
			cols[i] = types.Column{Name: fmt.Sprintf("l%d", i), Kind: v.K}
		}
		benchLineitem.sch = types.Schema{Cols: cols}
	})
	return benchLineitem.rows, benchLineitem.sch
}

// BenchmarkBatchVsRow measures the vectorized path against the scalar
// engine on a scan→filter→project→aggregate pipeline over SF0.05 lineitem
// (~300k rows). The scan runs on its own thread, as FragmentScan does, so
// the row baseline pays the old engine's one channel select per row while
// the batch variants amortize it across a slab.
func BenchmarkBatchVsRow(b *testing.B) {
	rows, sch := benchLineitemData()
	mkScan := func(batch int) *scanFeed {
		sf := &scanFeed{sch: sch, batch: batch}
		sf.start = func(snd *batchSender) error {
			for _, r := range rows {
				if !snd.send(r) {
					return nil
				}
			}
			snd.flush()
			return nil
		}
		return sf
	}
	// l_quantity < 25, then revenue = extendedprice * (1 - discount),
	// grouped by returnflag: the shape of TPC-H Q1's hot loop.
	pred := func() expr.Expr {
		return &expr.Bin{Op: expr.OpLt, L: col(4), R: &expr.Const{V: types.NewFloat(25)}}
	}
	revenue := func() expr.Expr {
		return &expr.Bin{Op: expr.OpMul, L: col(5),
			R: &expr.Bin{Op: expr.OpSub, L: &expr.Const{V: types.NewFloat(1)}, R: col(6)}}
	}
	run := func(b *testing.B, build func() Operator) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := Collect(build())
			if err != nil {
				b.Fatal(err)
			}
			if len(out) == 0 {
				b.Fatal("empty aggregate output")
			}
		}
		b.ReportMetric(float64(len(rows))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	}
	b.Run("row", func(b *testing.B) {
		// The pre-vectorization engine: one channel select per scanned row,
		// one Next interface call per row per operator.
		run(b, func() Operator {
			ctx := NewCtx("", 0)
			f := NewFilter(ctx, RowOnly(mkScan(1)), pred())
			p := NewProject(ctx, RowOnly(f), []expr.Expr{col(8), revenue()}, []string{"flag", "rev"})
			return NewHashAggregate(ctx, RowOnly(p), ColRefs(0),
				[]AggSpec{{Kind: AggSum, Arg: col(1), Name: "s"}, {Kind: AggCount, Name: "c"}}, AggComplete)
		})
	})
	for _, batch := range []int{1, 128, 1024} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			run(b, func() Operator {
				ctx := NewCtx("", 0)
				ctx.BatchRows = batch
				f := NewFilter(ctx, mkScan(batch), pred())
				p := NewProject(ctx, f, []expr.Expr{col(8), revenue()}, []string{"flag", "rev"})
				return NewHashAggregate(ctx, p, ColRefs(0),
					[]AggSpec{{Kind: AggSum, Arg: col(1), Name: "s"}, {Kind: AggCount, Name: "c"}}, AggComplete)
			})
		})
	}

	// Typed vector path over the same resident data: each engine starts
	// from its natural in-memory representation — boxed rows for the scalar
	// and batch engines, typed column slabs for the vector engine — so the
	// comparison isolates kernel cost, not input conversion.
	for _, batch := range []int{128, 1024} {
		b.Run(fmt.Sprintf("vec-%d", batch), func(b *testing.B) {
			src := newVecReplay(sch, rows, batch)
			run(b, func() Operator {
				ctx := NewCtx("", 0)
				ctx.BatchRows = batch
				src.pos = 0
				f := NewVecFilter(ctx, src, pred())
				p := NewVecProject(ctx, f, []expr.Expr{col(8), revenue()}, []string{"flag", "rev"})
				return FromVec(NewVecHashAggregate(ctx, p, ColRefs(0),
					[]AggSpec{{Kind: AggSum, Arg: col(1), Name: "s"}, {Kind: AggCount, Name: "c"}}, AggComplete))
			})
		})
	}

	// Three-way over a real PAX fragment: the same pipeline reading actual
	// pages through the buffer manager on the scalar engine, the boxed batch
	// path, and the typed vector path. This is the pair the vector format is
	// judged on — col-vec decodes slabs straight from pages with no boxed
	// Value materialization between scan and aggregate.
	fr := benchLineitemColFragment(b)
	colRow := func() Operator {
		ctx := NewCtx("", 0)
		f := NewFilter(ctx, RowOnly(NewColumnarScan(fr, "l", ScanConfig{Ctx: ctx})), pred())
		p := NewProject(ctx, RowOnly(f), []expr.Expr{col(8), revenue()}, []string{"flag", "rev"})
		return NewHashAggregate(ctx, RowOnly(p), ColRefs(0),
			[]AggSpec{{Kind: AggSum, Arg: col(1), Name: "s"}, {Kind: AggCount, Name: "c"}}, AggComplete)
	}
	colBatch := func() Operator {
		ctx := NewCtx("", 0)
		f := NewFilter(ctx, NewColumnarScan(fr, "l", ScanConfig{Ctx: ctx}), pred())
		p := NewProject(ctx, f, []expr.Expr{col(8), revenue()}, []string{"flag", "rev"})
		return NewHashAggregate(ctx, p, ColRefs(0),
			[]AggSpec{{Kind: AggSum, Arg: col(1), Name: "s"}, {Kind: AggCount, Name: "c"}}, AggComplete)
	}
	colVec := func() Operator {
		ctx := NewCtx("", 0)
		f := NewVecFilter(ctx, NewVecColumnarScan(fr, "l", ScanConfig{Ctx: ctx}), pred())
		p := NewVecProject(ctx, f, []expr.Expr{col(8), revenue()}, []string{"flag", "rev"})
		return FromVec(NewVecHashAggregate(ctx, p, ColRefs(0),
			[]AggSpec{{Kind: AggSum, Arg: col(1), Name: "s"}, {Kind: AggCount, Name: "c"}}, AggComplete))
	}
	// Golden parity before timing: all three engines must agree on the
	// aggregate before their throughput is worth comparing.
	baseline, err := Collect(colRow())
	if err != nil {
		b.Fatal(err)
	}
	for name, build := range map[string]func() Operator{"batch": colBatch, "vec": colVec} {
		got, err := Collect(build())
		if err != nil {
			b.Fatal(err)
		}
		if !sameRowMultiset(got, baseline) {
			b.Fatalf("col-%s output diverges from the scalar engine", name)
		}
	}
	b.Run("col-row", func(b *testing.B) { run(b, colRow) })
	b.Run("col-batch", func(b *testing.B) { run(b, colBatch) })
	b.Run("col-vec", func(b *testing.B) { run(b, colVec) })
}

// vecReplay serves pre-built typed batches, the vector engine's resident
// representation. Sel is cleared before each serve because a downstream
// VecFilter legitimately rewrites it in place.
type vecReplay struct {
	sch     types.Schema
	batches []*vec.Batch
	pos     int
}

func newVecReplay(sch types.Schema, rows []types.Row, size int) *vecReplay {
	r := &vecReplay{sch: sch}
	for off := 0; off < len(rows); off += size {
		end := off + size
		if end > len(rows) {
			end = len(rows)
		}
		r.batches = append(r.batches, vec.FromRows(sch, rows[off:end], nil))
	}
	return r
}

func (r *vecReplay) Schema() types.Schema { return r.sch }
func (r *vecReplay) Open() error          { return nil }
func (r *vecReplay) Close() error         { return nil }
func (r *vecReplay) Next() (types.Row, bool, error) {
	panic("vecReplay is vector-only")
}
func (r *vecReplay) NextVec() (*vec.Batch, bool, error) {
	if r.pos >= len(r.batches) {
		return nil, false, nil
	}
	b := r.batches[r.pos]
	r.pos++
	b.Sel = nil
	return b, true, nil
}

// sameRowMultiset compares two results order-insensitively.
func sameRowMultiset(got, want []types.Row) bool {
	if len(got) != len(want) {
		return false
	}
	counts := make(map[string]int, len(want))
	for _, r := range want {
		counts[r.String()]++
	}
	for _, r := range got {
		counts[r.String()]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

var benchColFrag struct {
	once sync.Once
	fr   *storage.ColumnarFragment
	err  error
}

// benchLineitemColFragment loads SF0.05 lineitem into a PAX columnar
// fragment once per process.
func benchLineitemColFragment(b *testing.B) *storage.ColumnarFragment {
	b.Helper()
	benchColFrag.once.Do(func() {
		rows, sch := benchLineitemData()
		dir, err := os.MkdirTemp("", "hrdbms-bench-col-*")
		if err != nil {
			benchColFrag.err = err
			return
		}
		ns, err := storage.NewNodeStore(storage.NodeConfig{
			NodeID: 0, BaseDir: dir, NumDisks: 2,
			PageSize: 4096, BufFrames: 2048, BufStripes: 4,
		})
		if err != nil {
			benchColFrag.err = err
			return
		}
		def := &catalog.TableDef{
			Name:     "lineitem",
			Schema:   sch,
			Columnar: true,
			Part:     catalog.Partitioning{Kind: catalog.PartHash, Cols: []string{"l0"}},
		}
		fr, err := storage.OpenColumnarFragment(ns, def)
		if err != nil {
			benchColFrag.err = err
			return
		}
		if _, err := fr.Load(rows); err != nil {
			benchColFrag.err = err
			return
		}
		benchColFrag.fr = fr
	})
	if benchColFrag.err != nil {
		b.Fatal(benchColFrag.err)
	}
	return benchColFrag.fr
}

var benchFrag struct {
	once sync.Once
	fr   *storage.Fragment
	err  error
}

// benchLineitemFragment loads SF0.05 lineitem into a real row fragment once
// per process, so parallel-vs-serial benchmarks scan actual pages through
// the buffer manager rather than a resident slice.
func benchLineitemFragment(b *testing.B) *storage.Fragment {
	b.Helper()
	benchFrag.once.Do(func() {
		rows, sch := benchLineitemData()
		dir, err := os.MkdirTemp("", "hrdbms-bench-*")
		if err != nil {
			benchFrag.err = err
			return
		}
		ns, err := storage.NewNodeStore(storage.NodeConfig{
			NodeID: 0, BaseDir: dir, NumDisks: 2,
			PageSize: 4096, BufFrames: 2048, BufStripes: 4,
		})
		if err != nil {
			benchFrag.err = err
			return
		}
		def := &catalog.TableDef{
			Name:   "lineitem",
			Schema: sch,
			Part:   catalog.Partitioning{Kind: catalog.PartHash, Cols: []string{"l0"}},
		}
		fr, err := storage.OpenFragment(ns, def)
		if err != nil {
			benchFrag.err = err
			return
		}
		if _, err := fr.Load(rows); err != nil {
			benchFrag.err = err
			return
		}
		benchFrag.fr = fr
	})
	if benchFrag.err != nil {
		b.Fatal(benchFrag.err)
	}
	return benchFrag.fr
}

// BenchmarkParallelVsSerial measures morsel-driven intra-node parallelism
// on the two hot pipelines the tentpole targets: a fragment scan → filter →
// hash-aggregate over SF0.05 lineitem, and an external sort of the same
// table. Each parallel variant first checks its output is byte-identical
// to serial (the aggregates are order-independent, and the sort key is
// lineitem's unique primary key), then reports rows/s.
//
// The speedup is bounded by min(workers, idle CPUs): on a single-core host
// (GOMAXPROCS=1) goroutines cannot overlap, so the parallel variants only
// measure the morsel machinery's overhead there (expect parity to ~15%
// slower, never a speedup). The cpus metric records the host context so
// ratios are comparable across machines.
func BenchmarkParallelVsSerial(b *testing.B) {
	b.Logf("NumCPU=%d GOMAXPROCS=%d (speedup requires multi-core)", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	rows, sch := benchLineitemData()
	fr := benchLineitemFragment(b)
	pred := func() expr.Expr {
		return &expr.Bin{Op: expr.OpLt, L: col(4), R: &expr.Const{V: types.NewFloat(25)}}
	}
	// Order-independent aggregates (count, int sum, whole-valued float sum,
	// min/max) keep parallel output byte-identical to serial.
	specs := func() []AggSpec {
		return []AggSpec{
			{Kind: AggCount, Name: "c"},
			{Kind: AggSum, Arg: col(1), Name: "sk"},
			{Kind: AggSum, Arg: col(4), Name: "sq"},
			{Kind: AggMin, Arg: col(10), Name: "mn"},
			{Kind: AggMax, Arg: col(10), Name: "mx"},
		}
	}
	scanAgg := func(parallel int) Operator {
		ctx := NewCtx("", 0)
		ctx.SetParallelBudget(parallel)
		cfg := ScanConfig{Pred: pred(), Parallel: parallel, Ctx: ctx}
		agg := NewHashAggregate(ctx, NewRowScan(fr, "l", cfg), ColRefs(8), specs(), AggComplete)
		agg.Parallel = parallel
		return agg
	}
	sortKeys := []SortKey{{Col: 0}, {Col: 3}}
	extSort := func(parallel int) Operator {
		ctx := NewCtx(os.TempDir(), 50000) // ~6 spill runs over SF0.05
		ctx.SetParallelBudget(parallel)
		s := NewSort(ctx, NewSource(sch, rows), sortKeys)
		s.Parallel = parallel
		return s
	}
	golden := func(b *testing.B, build func(parallel int) Operator, ordered bool) {
		b.Helper()
		want, err := Collect(build(1))
		if err != nil {
			b.Fatal(err)
		}
		got, err := Collect(build(4))
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(want) {
			b.Fatalf("parallel produced %d rows, serial %d", len(got), len(want))
		}
		g := make([]string, len(got))
		w := make([]string, len(want))
		for i := range got {
			g[i], w[i] = got[i].String(), want[i].String()
		}
		if !ordered {
			sort.Strings(g)
			sort.Strings(w)
		}
		for i := range g {
			if g[i] != w[i] {
				b.Fatalf("parallel output differs from serial at row %d:\n  got  %s\n  want %s", i, g[i], w[i])
			}
		}
	}
	run := func(b *testing.B, build func() Operator) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := Collect(build())
			if err != nil {
				b.Fatal(err)
			}
			if len(out) == 0 {
				b.Fatal("empty output")
			}
		}
		b.ReportMetric(float64(len(rows))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		b.ReportMetric(float64(runtime.NumCPU()), "cpus")
	}
	golden(b, scanAgg, false)
	b.Run("scan-agg-serial", func(b *testing.B) { run(b, func() Operator { return scanAgg(1) }) })
	b.Run("scan-agg-parallel-4", func(b *testing.B) { run(b, func() Operator { return scanAgg(4) }) })
	golden(b, extSort, true)
	b.Run("sort-serial", func(b *testing.B) { run(b, func() Operator { return extSort(1) }) })
	b.Run("sort-parallel-4", func(b *testing.B) { run(b, func() Operator { return extSort(4) }) })
}

func BenchmarkTopKVsFullSort(b *testing.B) {
	sch := intSchema("k", "v", "s")
	rows := benchRows(100000, 1<<30)
	b.Run("topk-10", func(b *testing.B) {
		b.SetBytes(int64(len(rows)))
		for i := 0; i < b.N; i++ {
			tk := NewTopK(nil, NewSource(sch, rows), []SortKey{{Col: 1, Desc: true}}, 10)
			if _, err := Collect(tk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sort-then-limit", func(b *testing.B) {
		b.SetBytes(int64(len(rows)))
		for i := 0; i < b.N; i++ {
			s := NewLimit(NewSort(nil, NewSource(sch, rows), []SortKey{{Col: 1, Desc: true}}), 10, 0)
			if _, err := Collect(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}
