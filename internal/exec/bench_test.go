package exec

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/tpch"
	"repro/internal/types"
)

func benchRows(n int, keys int) []types.Row {
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(i % keys)),
			types.NewFloat(float64(i) * 1.5),
			types.NewString(fmt.Sprintf("payload-%06d", i)),
		}
	}
	return rows
}

func BenchmarkHashJoinBuildProbe(b *testing.B) {
	sch := intSchema("k", "v", "s")
	probeRows := benchRows(50000, 1000)
	buildRows := benchRows(1000, 1000)
	b.SetBytes(int64(len(probeRows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := NewHashJoin(nil, NewSource(sch, probeRows), NewSource(sch, buildRows),
			ColRefs(0), ColRefs(0), JoinInner, nil, 2)
		if _, err := Collect(j); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashAggregateThroughput(b *testing.B) {
	sch := intSchema("k", "v", "s")
	rows := benchRows(100000, 64)
	specs := []AggSpec{
		{Kind: AggSum, Arg: ColRefs(1)[0], Name: "s"},
		{Kind: AggCount, Name: "c"},
	}
	b.SetBytes(int64(len(rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := NewHashAggregate(nil, NewSource(sch, rows), ColRefs(0), specs, AggComplete)
		if _, err := Collect(agg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortInMemory(b *testing.B) {
	sch := intSchema("k", "v", "s")
	rows := benchRows(100000, 1<<30)
	b.SetBytes(int64(len(rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSort(nil, NewSource(sch, rows), []SortKey{{Col: 1, Desc: true}})
		if _, err := Collect(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortExternal(b *testing.B) {
	ctx := NewCtx(b.TempDir(), 10000)
	sch := intSchema("k", "v", "s")
	rows := benchRows(100000, 1<<30)
	b.SetBytes(int64(len(rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSort(ctx, NewSource(sch, rows), []SortKey{{Col: 1}})
		if _, err := Collect(s); err != nil {
			b.Fatal(err)
		}
	}
}

var benchLineitem struct {
	once sync.Once
	rows []types.Row
	sch  types.Schema
}

// benchLineitemData generates the SF0.05 lineitem table once per process.
func benchLineitemData() ([]types.Row, types.Schema) {
	benchLineitem.once.Do(func() {
		d := tpch.Generate(0.05, 1)
		benchLineitem.rows = d.Lineitem
		cols := make([]types.Column, len(d.Lineitem[0]))
		for i, v := range d.Lineitem[0] {
			cols[i] = types.Column{Name: fmt.Sprintf("l%d", i), Kind: v.K}
		}
		benchLineitem.sch = types.Schema{Cols: cols}
	})
	return benchLineitem.rows, benchLineitem.sch
}

// BenchmarkBatchVsRow measures the vectorized path against the scalar
// engine on a scan→filter→project→aggregate pipeline over SF0.05 lineitem
// (~300k rows). The scan runs on its own thread, as FragmentScan does, so
// the row baseline pays the old engine's one channel select per row while
// the batch variants amortize it across a slab.
func BenchmarkBatchVsRow(b *testing.B) {
	rows, sch := benchLineitemData()
	mkScan := func(batch int) *scanFeed {
		sf := &scanFeed{sch: sch, batch: batch}
		sf.start = func(snd *batchSender) error {
			for _, r := range rows {
				if !snd.send(r) {
					return nil
				}
			}
			snd.flush()
			return nil
		}
		return sf
	}
	// l_quantity < 25, then revenue = extendedprice * (1 - discount),
	// grouped by returnflag: the shape of TPC-H Q1's hot loop.
	pred := func() expr.Expr {
		return &expr.Bin{Op: expr.OpLt, L: col(4), R: &expr.Const{V: types.NewFloat(25)}}
	}
	revenue := func() expr.Expr {
		return &expr.Bin{Op: expr.OpMul, L: col(5),
			R: &expr.Bin{Op: expr.OpSub, L: &expr.Const{V: types.NewFloat(1)}, R: col(6)}}
	}
	run := func(b *testing.B, build func() Operator) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := Collect(build())
			if err != nil {
				b.Fatal(err)
			}
			if len(out) == 0 {
				b.Fatal("empty aggregate output")
			}
		}
		b.ReportMetric(float64(len(rows))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	}
	b.Run("row", func(b *testing.B) {
		// The pre-vectorization engine: one channel select per scanned row,
		// one Next interface call per row per operator.
		run(b, func() Operator {
			ctx := NewCtx("", 0)
			f := NewFilter(ctx, RowOnly(mkScan(1)), pred())
			p := NewProject(ctx, RowOnly(f), []expr.Expr{col(8), revenue()}, []string{"flag", "rev"})
			return NewHashAggregate(ctx, RowOnly(p), ColRefs(0),
				[]AggSpec{{Kind: AggSum, Arg: col(1), Name: "s"}, {Kind: AggCount, Name: "c"}}, AggComplete)
		})
	})
	for _, batch := range []int{1, 128, 1024} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			run(b, func() Operator {
				ctx := NewCtx("", 0)
				ctx.BatchRows = batch
				f := NewFilter(ctx, mkScan(batch), pred())
				p := NewProject(ctx, f, []expr.Expr{col(8), revenue()}, []string{"flag", "rev"})
				return NewHashAggregate(ctx, p, ColRefs(0),
					[]AggSpec{{Kind: AggSum, Arg: col(1), Name: "s"}, {Kind: AggCount, Name: "c"}}, AggComplete)
			})
		})
	}
}

func BenchmarkTopKVsFullSort(b *testing.B) {
	sch := intSchema("k", "v", "s")
	rows := benchRows(100000, 1<<30)
	b.Run("topk-10", func(b *testing.B) {
		b.SetBytes(int64(len(rows)))
		for i := 0; i < b.N; i++ {
			tk := NewTopK(nil, NewSource(sch, rows), []SortKey{{Col: 1, Desc: true}}, 10)
			if _, err := Collect(tk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sort-then-limit", func(b *testing.B) {
		b.SetBytes(int64(len(rows)))
		for i := 0; i < b.N; i++ {
			s := NewLimit(NewSort(nil, NewSource(sch, rows), []SortKey{{Col: 1, Desc: true}}), 10, 0)
			if _, err := Collect(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}
