package exec

import (
	"errors"
	"strings"

	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vec"
)

// VecOperator is the typed-columnar sibling of BatchOperator: NextVec
// returns a *vec.Batch of unboxed column slabs instead of a boxed row slab.
//
// Ownership mirrors the slab contract (see vec package doc): the returned
// batch — column slabs, bitmaps, and selection vector — is valid only until
// the producer's next NextVec or Close; the caller may rewrite Sel in place
// but must not retain the batch or its arrays. Boxed values copied out are
// immutable and retainable.
type VecOperator interface {
	Operator
	// NextVec returns the next batch; ok=false signals exhaustion.
	// Implementations never return a batch with zero active rows and
	// ok=true.
	NextVec() (*vec.Batch, bool, error)
}

// nativeVec reports whether the operator exposes a native vector path.
func nativeVec(op Operator) (VecOperator, bool) {
	v, ok := op.(VecOperator)
	return v, ok
}

// vecFromRows adapts a row/batch producer to the vector path by boxing row
// slabs into a reused batch. The adapter owns the batch (and its string
// dictionaries, so codes stay stable across the stream).
type vecFromRows struct {
	in    Operator
	bin   BatchOperator
	batch *vec.Batch
}

// ToVec returns a VecOperator view of op: the operator itself when it is
// vector-native, otherwise a boxing adapter pulling row slabs of the given
// size (0 = DefaultBatchRows).
func ToVec(op Operator, size int) VecOperator {
	if v, ok := nativeVec(op); ok {
		return v
	}
	if size <= 0 {
		size = DefaultBatchRows
	}
	return &vecFromRows{in: op, bin: ToBatch(op, size)}
}

func (a *vecFromRows) Schema() types.Schema { return a.in.Schema() }
func (a *vecFromRows) Open() error          { return a.in.Open() }
func (a *vecFromRows) Close() error         { return a.in.Close() }

func (a *vecFromRows) Next() (types.Row, bool, error) { return a.in.Next() }

func (a *vecFromRows) NextVec() (*vec.Batch, bool, error) {
	rows, ok, err := a.bin.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	a.batch = vec.FromRows(a.in.Schema(), rows, a.batch)
	return a.batch, true, nil
}

// FromVec returns the row-path view of a vector operator. Vector operators
// implement Operator/BatchOperator themselves (via vecRowShim), so this is
// the identity; it exists to mark adapter seams in plans.
func FromVec(op VecOperator) Operator { return op }

// vecRowShim gives a vector-native operator its Operator/BatchOperator
// faces by materializing batches from the owner's NextVec. Embedders set
// src to themselves in their constructor.
type vecRowShim struct {
	src  VecOperator
	cur  *vec.Batch
	pos  int
	slab []types.Row
}

func (s *vecRowShim) Next() (types.Row, bool, error) {
	for s.cur == nil || s.pos >= s.cur.Rows() {
		b, ok, err := s.src.NextVec()
		if err != nil || !ok {
			s.cur = nil
			return nil, false, err
		}
		//lint:ignore vecown row cursor: consumed before the next NextVec
		s.cur = b
		s.pos = 0
	}
	i := s.cur.Index(s.pos)
	s.pos++
	// Row values must be retainable: box into a fresh row.
	row := make(types.Row, len(s.cur.Cols))
	return s.cur.ReadRow(i, row), true, nil
}

func (s *vecRowShim) NextBatch() ([]types.Row, bool, error) {
	b, ok, err := s.src.NextVec()
	if err != nil || !ok {
		return nil, false, err
	}
	s.slab = b.Materialize(s.slab)
	return s.slab, true, nil
}

// errVecFallback signals that a compiled kernel met a runtime layout it
// cannot handle (e.g. a demoted boxed column); the operator re-evaluates
// the batch through the row expression path, preserving exact semantics.
var errVecFallback = errors.New("exec: vector kernel fallback")

// numVec is a compiled numeric result over the active rows of a batch:
// dense (index k = k-th active row), all-int or all-float, with an optional
// dense null mask.
type numVec struct {
	isFloat bool
	i       []int64
	f       []float64
	null    []bool // nil = no nulls
}

// numNode evaluates a numeric (INT/FLOAT/DATE) expression vectorized.
type numNode interface {
	evalNum(b *vec.Batch, n int) (numVec, error)
}

// boolNode evaluates a boolean expression vectorized into dense truth and
// null masks (SQL three-valued logic: null[k] overrides t[k]).
type boolNode interface {
	evalBool(b *vec.Batch, n int) (t, null []bool, err error)
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func growInts(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// numColNode gathers a typed numeric column through the selection vector.
type numColNode struct {
	idx  int
	i    []int64
	f    []float64
	null []bool
}

func (nc *numColNode) evalNum(b *vec.Batch, n int) (numVec, error) {
	c := &b.Cols[nc.idx]
	switch c.Form {
	case vec.FormInt:
		if b.Sel == nil && len(c.Nulls) == 0 {
			return numVec{i: c.I[:n]}, nil // zero-copy passthrough
		}
		nc.i = growInts(nc.i, n)
		var null []bool
		for k := 0; k < n; k++ {
			i := b.Index(k)
			nc.i[k] = c.I[i]
			if c.IsNull(i) {
				if null == nil {
					null = growBools(nc.null, n)
				}
				null[k] = true
			}
		}
		if null != nil {
			nc.null = null
		}
		return numVec{i: nc.i, null: null}, nil
	case vec.FormFloat:
		if b.Sel == nil && len(c.Nulls) == 0 {
			return numVec{isFloat: true, f: c.F[:n]}, nil
		}
		nc.f = growFloats(nc.f, n)
		var null []bool
		for k := 0; k < n; k++ {
			i := b.Index(k)
			nc.f[k] = c.F[i]
			if c.IsNull(i) {
				if null == nil {
					null = growBools(nc.null, n)
				}
				null[k] = true
			}
		}
		if null != nil {
			nc.null = null
		}
		return numVec{isFloat: true, f: nc.f, null: null}, nil
	default:
		return numVec{}, errVecFallback
	}
}

// numConstNode broadcasts a literal.
type numConstNode struct {
	isFloat bool
	iv      int64
	fv      float64
	i       []int64
	f       []float64
}

func (nc *numConstNode) evalNum(_ *vec.Batch, n int) (numVec, error) {
	if nc.isFloat {
		nc.f = growFloats(nc.f, n)
		for k := range nc.f {
			nc.f[k] = nc.fv
		}
		return numVec{isFloat: true, f: nc.f}, nil
	}
	nc.i = growInts(nc.i, n)
	for k := range nc.i {
		nc.i[k] = nc.iv
	}
	return numVec{i: nc.i}, nil
}

// arithNode is vectorized +, -, * with int/float promotion (matching
// expr.arith for INT/FLOAT operands; DATE arithmetic is not compiled).
type arithNode struct {
	op     expr.BinOp
	l, r   numNode
	i      []int64
	f      []float64
	lf, rf []float64
	null   []bool
}

func (a *arithNode) evalNum(b *vec.Batch, n int) (numVec, error) {
	lv, err := a.l.evalNum(b, n)
	if err != nil {
		return numVec{}, err
	}
	rv, err := a.r.evalNum(b, n)
	if err != nil {
		return numVec{}, err
	}
	null := mergeNulls(&a.null, lv.null, rv.null, n)
	if !lv.isFloat && !rv.isFloat {
		a.i = growInts(a.i, n)
		switch a.op {
		case expr.OpAdd:
			for k := 0; k < n; k++ {
				a.i[k] = lv.i[k] + rv.i[k]
			}
		case expr.OpSub:
			for k := 0; k < n; k++ {
				a.i[k] = lv.i[k] - rv.i[k]
			}
		default:
			for k := 0; k < n; k++ {
				a.i[k] = lv.i[k] * rv.i[k]
			}
		}
		return numVec{i: a.i, null: null}, nil
	}
	a.f = growFloats(a.f, n)
	lf := lv.asFloats(&a.lf)
	rf := rv.asFloats(&a.rf)
	switch a.op {
	case expr.OpAdd:
		for k := 0; k < n; k++ {
			a.f[k] = lf[k] + rf[k]
		}
	case expr.OpSub:
		for k := 0; k < n; k++ {
			a.f[k] = lf[k] - rf[k]
		}
	default:
		for k := 0; k < n; k++ {
			a.f[k] = lf[k] * rf[k]
		}
	}
	return numVec{isFloat: true, f: a.f, null: null}, nil
}

// asFloats returns the vector's values as floats, converting ints into the
// provided scratch slice when needed.
func (v numVec) asFloats(scratch *[]float64) []float64 {
	if v.isFloat {
		return v.f
	}
	s := growFloats(*scratch, len(v.i))
	for k, x := range v.i {
		s[k] = float64(x)
	}
	*scratch = s
	return s
}

// mergeNulls ORs two optional dense null masks into owned scratch.
func mergeNulls(scratch *[]bool, a, b []bool, n int) []bool {
	if a == nil && b == nil {
		return nil
	}
	s := growBools(*scratch, n)
	for k := 0; k < n; k++ {
		s[k] = (a != nil && a[k]) || (b != nil && b[k])
	}
	*scratch = s
	return s
}

// cmpNumNode is a vectorized numeric comparison. mixed selects float
// comparison, mirroring types.Compare: same-kind INT/DATE operands compare
// by integer payload, cross-kind numeric operands compare by Float().
type cmpNumNode struct {
	op     expr.BinOp
	mixed  bool
	l, r   numNode
	t      []bool
	null   []bool
	lf, rf []float64
}

func cmpHolds(op expr.BinOp, c int) bool {
	switch op {
	case expr.OpEq:
		return c == 0
	case expr.OpNe:
		return c != 0
	case expr.OpLt:
		return c < 0
	case expr.OpLe:
		return c <= 0
	case expr.OpGt:
		return c > 0
	default:
		return c >= 0
	}
}

func (cn *cmpNumNode) evalBool(b *vec.Batch, n int) ([]bool, []bool, error) {
	lv, err := cn.l.evalNum(b, n)
	if err != nil {
		return nil, nil, err
	}
	rv, err := cn.r.evalNum(b, n)
	if err != nil {
		return nil, nil, err
	}
	null := mergeNulls(&cn.null, lv.null, rv.null, n)
	cn.t = growBools(cn.t, n)
	if !cn.mixed && !lv.isFloat && !rv.isFloat {
		li, ri := lv.i, rv.i
		switch cn.op {
		case expr.OpEq:
			for k := 0; k < n; k++ {
				cn.t[k] = li[k] == ri[k]
			}
		case expr.OpNe:
			for k := 0; k < n; k++ {
				cn.t[k] = li[k] != ri[k]
			}
		case expr.OpLt:
			for k := 0; k < n; k++ {
				cn.t[k] = li[k] < ri[k]
			}
		case expr.OpLe:
			for k := 0; k < n; k++ {
				cn.t[k] = li[k] <= ri[k]
			}
		case expr.OpGt:
			for k := 0; k < n; k++ {
				cn.t[k] = li[k] > ri[k]
			}
		default:
			for k := 0; k < n; k++ {
				cn.t[k] = li[k] >= ri[k]
			}
		}
		return cn.t, null, nil
	}
	lf := lv.asFloats(&cn.lf)
	rf := rv.asFloats(&cn.rf)
	switch cn.op {
	case expr.OpEq:
		for k := 0; k < n; k++ {
			cn.t[k] = lf[k] == rf[k]
		}
	case expr.OpNe:
		for k := 0; k < n; k++ {
			cn.t[k] = lf[k] != rf[k]
		}
	case expr.OpLt:
		for k := 0; k < n; k++ {
			cn.t[k] = lf[k] < rf[k]
		}
	case expr.OpLe:
		for k := 0; k < n; k++ {
			cn.t[k] = lf[k] <= rf[k]
		}
	case expr.OpGt:
		for k := 0; k < n; k++ {
			cn.t[k] = lf[k] > rf[k]
		}
	default:
		for k := 0; k < n; k++ {
			cn.t[k] = lf[k] >= rf[k]
		}
	}
	return cn.t, null, nil
}

// cmpStrConstNode compares a dictionary string column against a literal.
// Equality tests resolve the literal to a code once per batch; ordering
// tests compare dictionary strings per row (still unboxed).
type cmpStrConstNode struct {
	op   expr.BinOp
	idx  int
	s    string
	t    []bool
	null []bool
}

func (cs *cmpStrConstNode) evalBool(b *vec.Batch, n int) ([]bool, []bool, error) {
	c := &b.Cols[cs.idx]
	if c.Form != vec.FormStr {
		return nil, nil, errVecFallback
	}
	cs.t = growBools(cs.t, n)
	var null []bool
	for k := 0; k < n; k++ {
		if c.IsNull(b.Index(k)) {
			if null == nil {
				null = growBools(cs.null, n)
			}
			null[k] = true
		}
	}
	if null != nil {
		cs.null = null
	}
	switch cs.op {
	case expr.OpEq, expr.OpNe:
		code, found := c.Dict.Lookup(cs.s)
		want := cs.op == expr.OpEq
		for k := 0; k < n; k++ {
			cs.t[k] = (found && c.Codes[b.Index(k)] == code) == want
		}
	default:
		for k := 0; k < n; k++ {
			c2 := strings.Compare(c.Dict.Str(c.Codes[b.Index(k)]), cs.s)
			cs.t[k] = cmpHolds(cs.op, c2)
		}
	}
	return cs.t, null, nil
}

// cmpStrColsNode compares two dictionary string columns. When both share
// one dictionary, equality is pure code comparison.
type cmpStrColsNode struct {
	op      expr.BinOp
	li, ri  int
	t, null []bool
}

func (cs *cmpStrColsNode) evalBool(b *vec.Batch, n int) ([]bool, []bool, error) {
	lc, rc := &b.Cols[cs.li], &b.Cols[cs.ri]
	if lc.Form != vec.FormStr || rc.Form != vec.FormStr {
		return nil, nil, errVecFallback
	}
	cs.t = growBools(cs.t, n)
	var null []bool
	for k := 0; k < n; k++ {
		i := b.Index(k)
		if lc.IsNull(i) || rc.IsNull(i) {
			if null == nil {
				null = growBools(cs.null, n)
			}
			null[k] = true
		}
	}
	if null != nil {
		cs.null = null
	}
	shared := lc.Dict == rc.Dict
	if shared && (cs.op == expr.OpEq || cs.op == expr.OpNe) {
		want := cs.op == expr.OpEq
		for k := 0; k < n; k++ {
			i := b.Index(k)
			cs.t[k] = (lc.Codes[i] == rc.Codes[i]) == want
		}
		return cs.t, null, nil
	}
	for k := 0; k < n; k++ {
		i := b.Index(k)
		c2 := strings.Compare(lc.Dict.Str(lc.Codes[i]), rc.Dict.Str(rc.Codes[i]))
		cs.t[k] = cmpHolds(cs.op, c2)
	}
	return cs.t, null, nil
}

// logicNode is vectorized AND/OR over {true, false, unknown}. Dense
// evaluation of both sides is safe because compiled nodes cannot raise
// row-level evaluation errors (division is never compiled).
type logicNode struct {
	and     bool
	l, r    boolNode
	t, null []bool
}

func (ln *logicNode) evalBool(b *vec.Batch, n int) ([]bool, []bool, error) {
	lt, lnull, err := ln.l.evalBool(b, n)
	if err != nil {
		return nil, nil, err
	}
	// The left result lives in the left child's scratch; evaluating the
	// right child could share nodes only if the tree aliased, which
	// compile never produces, so reading lt afterwards is safe.
	rt, rnull, err := ln.r.evalBool(b, n)
	if err != nil {
		return nil, nil, err
	}
	ln.t = growBools(ln.t, n)
	var null []bool
	for k := 0; k < n; k++ {
		lN := lnull != nil && lnull[k]
		rN := rnull != nil && rnull[k]
		lT := !lN && lt[k]
		rT := !rN && rt[k]
		if ln.and {
			switch {
			case (!lN && !lT) || (!rN && !rT):
				ln.t[k] = false
			case lN || rN:
				if null == nil {
					null = growBools(ln.null, n)
				}
				null[k] = true
			default:
				ln.t[k] = true
			}
		} else {
			switch {
			case lT || rT:
				ln.t[k] = true
			case lN || rN:
				if null == nil {
					null = growBools(ln.null, n)
				}
				null[k] = true
			default:
				ln.t[k] = false
			}
		}
	}
	if null != nil {
		ln.null = null
	}
	return ln.t, null, nil
}

// notNode negates a boolean vector; unknown stays unknown.
type notNode struct {
	e boolNode
	t []bool
}

func (nn *notNode) evalBool(b *vec.Batch, n int) ([]bool, []bool, error) {
	t, null, err := nn.e.evalBool(b, n)
	if err != nil {
		return nil, nil, err
	}
	nn.t = growBools(nn.t, n)
	for k := 0; k < n; k++ {
		nn.t[k] = !t[k]
	}
	return nn.t, null, nil
}

// isNullColNode vectorizes `col IS [NOT] NULL`.
type isNullColNode struct {
	idx    int
	negate bool
	t      []bool
}

func (in *isNullColNode) evalBool(b *vec.Batch, n int) ([]bool, []bool, error) {
	c := &b.Cols[in.idx]
	in.t = growBools(in.t, n)
	for k := 0; k < n; k++ {
		in.t[k] = c.IsNull(b.Index(k)) != in.negate
	}
	return in.t, nil, nil
}

// boolColNode reads a BOOLEAN column as a predicate.
type boolColNode struct {
	idx     int
	t, null []bool
}

func (bc *boolColNode) evalBool(b *vec.Batch, n int) ([]bool, []bool, error) {
	c := &b.Cols[bc.idx]
	if c.Form != vec.FormInt {
		return nil, nil, errVecFallback
	}
	bc.t = growBools(bc.t, n)
	var null []bool
	for k := 0; k < n; k++ {
		i := b.Index(k)
		bc.t[k] = c.I[i] != 0
		if c.IsNull(i) {
			if null == nil {
				null = growBools(bc.null, n)
			}
			null[k] = true
		}
	}
	if null != nil {
		bc.null = null
	}
	return bc.t, null, nil
}

func numericExprKind(k types.Kind) bool {
	return k == types.KindInt || k == types.KindFloat || k == types.KindDate
}

// compileNum compiles an INT/FLOAT expression to a vectorized node, or nil
// when the shape is unsupported (the caller falls back to row evaluation).
// DATE operands are deliberately excluded from compiled arithmetic so the
// date±int promotion rules stay in one place (expr.arith).
func compileNum(e expr.Expr, sch types.Schema) numNode {
	switch x := e.(type) {
	case *expr.Col:
		if x.Index < 0 || x.Index >= sch.Len() {
			return nil
		}
		switch sch.Cols[x.Index].Kind {
		case types.KindInt, types.KindFloat, types.KindDate:
			return &numColNode{idx: x.Index}
		}
		return nil
	case *expr.Const:
		switch x.V.K {
		case types.KindInt:
			return &numConstNode{iv: x.V.I}
		case types.KindFloat:
			return &numConstNode{isFloat: true, fv: x.V.F}
		}
		return nil
	case *expr.Bin:
		if x.Op != expr.OpAdd && x.Op != expr.OpSub && x.Op != expr.OpMul {
			return nil
		}
		lk, rk := expr.KindOf(x.L, sch), expr.KindOf(x.R, sch)
		if (lk != types.KindInt && lk != types.KindFloat) || (rk != types.KindInt && rk != types.KindFloat) {
			return nil
		}
		l, r := compileNum(x.L, sch), compileNum(x.R, sch)
		if l == nil || r == nil {
			return nil
		}
		return &arithNode{op: x.Op, l: l, r: r}
	}
	return nil
}

// compileBool compiles a predicate to a vectorized node, or nil when
// unsupported. LIKE, BETWEEN, IN, CASE, functions, and division inside
// predicates all take the row fallback.
func compileBool(e expr.Expr, sch types.Schema) boolNode {
	switch x := e.(type) {
	case *expr.Col:
		if x.Index >= 0 && x.Index < sch.Len() && sch.Cols[x.Index].Kind == types.KindBool {
			return &boolColNode{idx: x.Index}
		}
		return nil
	case *expr.Not:
		if inner := compileBool(x.E, sch); inner != nil {
			return &notNode{e: inner}
		}
		return nil
	case *expr.IsNull:
		if c, ok := x.E.(*expr.Col); ok && c.Index >= 0 && c.Index < sch.Len() {
			return &isNullColNode{idx: c.Index, negate: x.Negate}
		}
		return nil
	case *expr.Bin:
		if x.Op == expr.OpAnd || x.Op == expr.OpOr {
			l, r := compileBool(x.L, sch), compileBool(x.R, sch)
			if l == nil || r == nil {
				return nil
			}
			return &logicNode{and: x.Op == expr.OpAnd, l: l, r: r}
		}
		if !x.Op.IsComparison() {
			return nil
		}
		lk, rk := expr.KindOf(x.L, sch), expr.KindOf(x.R, sch)
		if numericExprKind(lk) && numericExprKind(rk) {
			l, r := compileNum(x.L, sch), compileNum(x.R, sch)
			if l == nil || r == nil {
				return nil
			}
			return &cmpNumNode{op: x.Op, mixed: lk != rk, l: l, r: r}
		}
		if lk == types.KindString && rk == types.KindString {
			lc, lok := x.L.(*expr.Col)
			if !lok {
				return nil
			}
			switch rv := x.R.(type) {
			case *expr.Const:
				if rv.V.K == types.KindString {
					return &cmpStrConstNode{op: x.Op, idx: lc.Index, s: rv.V.S}
				}
			case *expr.Col:
				return &cmpStrColsNode{op: x.Op, li: lc.Index, ri: rv.Index}
			}
			return nil
		}
		return nil
	}
	return nil
}

// VecFilter evaluates its predicate into the selection vector of the input
// batch — survivors are recorded as row indices, the column slabs are never
// copied or compacted. Compiled predicates run typed kernels; unsupported
// shapes (LIKE, IN, CASE, division, boxed columns) fall back to row
// evaluation per batch, preserving exact expression semantics.
type VecFilter struct {
	vecRowShim
	ctx     *Ctx
	in      VecOperator
	pred    expr.Expr
	node    boolNode
	sel     []int32
	scratch types.Row
}

// NewVecFilter builds a vectorized filter; the predicate must be bound to
// the input schema.
func NewVecFilter(ctx *Ctx, in VecOperator, pred expr.Expr) *VecFilter {
	f := &VecFilter{ctx: ctx, in: in, pred: pred, node: compileBool(pred, in.Schema())}
	f.vecRowShim.src = f
	return f
}

// Schema implements Operator.
func (f *VecFilter) Schema() types.Schema { return f.in.Schema() }

// Open implements Operator.
func (f *VecFilter) Open() error {
	f.cur, f.pos = nil, 0
	return f.in.Open()
}

// Close implements Operator.
func (f *VecFilter) Close() error { return f.in.Close() }

// NextVec implements VecOperator.
func (f *VecFilter) NextVec() (*vec.Batch, bool, error) {
	for {
		b, ok, err := f.in.NextVec()
		if err != nil || !ok {
			return nil, false, err
		}
		n := b.Rows()
		if n == 0 {
			continue
		}
		if f.ctx != nil {
			f.ctx.RowsProcessed.Add(int64(n))
		}
		sel := f.sel[:0]
		compiled := false
		if f.node != nil {
			t, null, err := f.node.evalBool(b, n)
			if err == nil {
				compiled = true
				for k := 0; k < n; k++ {
					if t[k] && (null == nil || !null[k]) {
						sel = append(sel, int32(b.Index(k)))
					}
				}
			} else if !errors.Is(err, errVecFallback) {
				return nil, false, err
			}
		}
		if !compiled {
			if f.scratch == nil {
				f.scratch = make(types.Row, len(b.Cols))
			}
			for k := 0; k < n; k++ {
				i := b.Index(k)
				keep, err := expr.EvalBool(f.pred, b.ReadRow(i, f.scratch))
				if err != nil {
					return nil, false, err
				}
				if keep {
					sel = append(sel, int32(i))
				}
			}
		}
		f.sel = sel
		if len(sel) == 0 {
			continue
		}
		b.Sel = sel
		return b, true, nil
	}
}

// colGather densifies one input column through the batch's selection into
// operator-owned scratch, so downstream consumers see Sel == nil columns.
type colGather struct {
	i     []int64
	f     []float64
	codes []int32
	vals  []types.Value
	nulls []uint64
}

func growWords(s []uint64, n int) []uint64 {
	w := (n + 63) / 64
	if cap(s) < w {
		return make([]uint64, w)
	}
	s = s[:w]
	for i := range s {
		s[i] = 0
	}
	return s
}

func (g *colGather) gather(b *vec.Batch, idx, n int) vec.Col {
	c := &b.Cols[idx]
	out := vec.Col{Kind: c.Kind, Form: c.Form, Dict: c.Dict}
	anyNull := false
	switch c.Form {
	case vec.FormInt:
		g.i = growInts(g.i, n)
		for k := 0; k < n; k++ {
			g.i[k] = c.I[b.Index(k)]
		}
		out.I = g.i
	case vec.FormFloat:
		g.f = growFloats(g.f, n)
		for k := 0; k < n; k++ {
			g.f[k] = c.F[b.Index(k)]
		}
		out.F = g.f
	case vec.FormStr:
		if cap(g.codes) < n {
			g.codes = make([]int32, n)
		}
		g.codes = g.codes[:n]
		for k := 0; k < n; k++ {
			g.codes[k] = c.Codes[b.Index(k)]
		}
		out.Codes = g.codes
	default:
		if cap(g.vals) < n {
			g.vals = make([]types.Value, n)
		}
		g.vals = g.vals[:n]
		for k := 0; k < n; k++ {
			g.vals[k] = c.Vals[b.Index(k)]
		}
		out.Vals = g.vals
		return out // boxed carries NULL in Vals, no bitmap
	}
	for k := 0; k < n; k++ {
		if c.IsNull(b.Index(k)) {
			anyNull = true
			break
		}
	}
	if anyNull {
		g.nulls = growWords(g.nulls, n)
		for k := 0; k < n; k++ {
			if c.IsNull(b.Index(k)) {
				g.nulls = vec.SetBit(g.nulls, k)
			}
		}
		out.Nulls = g.nulls
	}
	return out
}

// boolsToBitmap converts a dense null mask into a bitmap in scratch.
func boolsToBitmap(scratch *[]uint64, null []bool, n int) []uint64 {
	if null == nil {
		return nil
	}
	any := false
	for k := 0; k < n; k++ {
		if null[k] {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	s := growWords(*scratch, n)
	for k := 0; k < n; k++ {
		if null[k] {
			s = vec.SetBit(s, k)
		}
	}
	*scratch = s
	return s
}

// vecProjItem is one compiled output column of a VecProject.
type vecProjItem struct {
	pass  int // input column index for passthrough, -1 otherwise
	num   numNode
	boolN boolNode
	g     colGather
	nulls []uint64
	ints  []int64
}

// VecProject computes output expressions into flat output columns. The
// output batch is dense (no selection): plain column references pass
// through zero-copy when the input has no selection, gather otherwise;
// compiled arithmetic lands directly in typed output slabs. Any
// uncompilable expression sends the whole operator to the row fallback
// (boxing per batch), keeping semantics identical to Project.
type VecProject struct {
	vecRowShim
	ctx     *Ctx
	in      VecOperator
	exprs   []expr.Expr
	out     types.Schema
	items   []vecProjItem // nil = always use the row fallback
	ob      vec.Batch
	fb      *vec.Batch
	scratch types.Row
}

// NewVecProject builds a vectorized projection; exprs must be bound to the
// input schema and names gives the output column names.
func NewVecProject(ctx *Ctx, in VecOperator, exprs []expr.Expr, names []string) *VecProject {
	sch := in.Schema()
	cols := make([]types.Column, len(exprs))
	for i, e := range exprs {
		cols[i] = types.Column{Name: names[i], Kind: expr.KindOf(e, sch)}
	}
	p := &VecProject{ctx: ctx, in: in, exprs: exprs, out: types.Schema{Cols: cols}}
	p.vecRowShim.src = p
	items := make([]vecProjItem, len(exprs))
	for i, e := range exprs {
		items[i].pass = -1
		if c, ok := e.(*expr.Col); ok && c.Index >= 0 && c.Index < sch.Len() {
			items[i].pass = c.Index
			continue
		}
		if nn := compileNum(e, sch); nn != nil {
			items[i].num = nn
			continue
		}
		if bn := compileBool(e, sch); bn != nil {
			items[i].boolN = bn
			continue
		}
		items = nil
		break
	}
	p.items = items
	p.ob.Sch = p.out
	p.ob.Cols = make([]vec.Col, len(exprs))
	return p
}

// Schema implements Operator.
func (p *VecProject) Schema() types.Schema { return p.out }

// Open implements Operator.
func (p *VecProject) Open() error {
	p.cur, p.pos = nil, 0
	return p.in.Open()
}

// Close implements Operator.
func (p *VecProject) Close() error { return p.in.Close() }

// NextVec implements VecOperator.
func (p *VecProject) NextVec() (*vec.Batch, bool, error) {
	b, ok, err := p.in.NextVec()
	if err != nil || !ok {
		return nil, false, err
	}
	n := b.Rows()
	if p.ctx != nil {
		p.ctx.RowsProcessed.Add(int64(n))
	}
	if p.items != nil {
		out, err := p.vectorized(b, n)
		if err == nil {
			return out, true, nil
		}
		if !errors.Is(err, errVecFallback) {
			return nil, false, err
		}
	}
	out, err := p.fallback(b, n)
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// vectorized builds the output batch from compiled items. Column headers
// are fully rebuilt each call, so sharing input slabs is safe: nothing is
// ever appended to a shared header.
func (p *VecProject) vectorized(b *vec.Batch, n int) (*vec.Batch, error) {
	for j := range p.items {
		it := &p.items[j]
		switch {
		case it.pass >= 0:
			if b.Sel == nil {
				p.ob.Cols[j] = b.Cols[it.pass]
			} else {
				p.ob.Cols[j] = it.g.gather(b, it.pass, n)
			}
		case it.num != nil:
			nv, err := it.num.evalNum(b, n)
			if err != nil {
				return nil, err
			}
			kind := p.out.Cols[j].Kind
			col := vec.Col{Kind: kind, Nulls: boolsToBitmap(&it.nulls, nv.null, n)}
			if nv.isFloat {
				col.Form, col.F = vec.FormFloat, nv.f
			} else {
				col.Form, col.I = vec.FormInt, nv.i
			}
			p.ob.Cols[j] = col
		default:
			t, null, err := it.boolN.evalBool(b, n)
			if err != nil {
				return nil, err
			}
			it.ints = growInts(it.ints, n)
			for k := 0; k < n; k++ {
				if t[k] {
					it.ints[k] = 1
				} else {
					it.ints[k] = 0
				}
			}
			p.ob.Cols[j] = vec.Col{
				Kind: types.KindBool, Form: vec.FormInt,
				I: it.ints, Nulls: boolsToBitmap(&it.nulls, null, n),
			}
		}
	}
	p.ob.N = n
	p.ob.Sel = nil
	return &p.ob, nil
}

// fallback evaluates every expression row-wise into a boxed-append batch.
func (p *VecProject) fallback(b *vec.Batch, n int) (*vec.Batch, error) {
	if p.fb == nil {
		p.fb = vec.New(p.out)
	} else {
		p.fb.Reset()
	}
	if p.scratch == nil {
		p.scratch = make(types.Row, len(b.Cols))
	}
	for k := 0; k < n; k++ {
		row := b.ReadRow(b.Index(k), p.scratch)
		for j, e := range p.exprs {
			v, err := e.Eval(row)
			if err != nil {
				return nil, err
			}
			p.fb.Cols[j].Append(v)
		}
		p.fb.N++
	}
	return p.fb, nil
}
