package exec

import (
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vec"
)

// Typed accumulation entry points for the vector aggregate. They fold an
// unboxed payload into the state with exactly the semantics of add():
// count++, integer kinds feed both sumI and sumF, floats set isFloat and
// feed sumF only, min/max ordered as types.Compare orders them. The
// same-kind fast compare is taken when the running extreme already has the
// value's kind (the common case on a fixed-kind column); mixed-kind states
// fall back to types.Compare so a demoted column stays correct.

// addInt folds a non-null fixed-width payload (Int/Date/Bool kind k).
func (s *aggState) addInt(k types.Kind, x int64) {
	s.seenAny = true
	s.count++
	s.sumI += x
	s.sumF += float64(x)
	if s.min.K == k {
		if x < s.min.I {
			s.min = types.Value{K: k, I: x}
		}
	} else {
		v := types.Value{K: k, I: x}
		if s.min.IsNull() || types.Compare(v, s.min) < 0 {
			s.min = v
		}
	}
	if s.max.K == k {
		if x > s.max.I {
			s.max = types.Value{K: k, I: x}
		}
	} else {
		v := types.Value{K: k, I: x}
		if s.max.IsNull() || types.Compare(v, s.max) > 0 {
			s.max = v
		}
	}
}

// addFloat folds a non-null float payload.
func (s *aggState) addFloat(x float64) {
	s.seenAny = true
	s.count++
	s.isFloat = true
	s.sumF += x
	if s.min.K == types.KindFloat {
		if x < s.min.F {
			s.min = types.NewFloat(x)
		}
	} else {
		v := types.NewFloat(x)
		if s.min.IsNull() || types.Compare(v, s.min) < 0 {
			s.min = v
		}
	}
	if s.max.K == types.KindFloat {
		if x > s.max.F {
			s.max = types.NewFloat(x)
		}
	} else {
		v := types.NewFloat(x)
		if s.max.IsNull() || types.Compare(v, s.max) > 0 {
			s.max = v
		}
	}
}

// vecAggKey is the comparable group key of the vector aggregate: up to two
// key columns packed as raw uint64 payloads (int64 bits, or a dictionary
// code minted from the aggregate's own dictionary so codes are stable
// across input batches). The flags byte disambiguates NULL slots and
// escape-coded slots, keeping the value→key mapping injective.
type vecAggKey struct {
	v0, v1 uint64
	flags  uint8
}

// vecAggKey flag bits.
const (
	vkNull0 uint8 = 1 << iota
	vkNull1
	vkEsc0
	vkEsc1
)

// vecKeyCol is one group-key column of the vector aggregate.
type vecKeyCol struct {
	idx  int
	kind types.Kind
	// dict is the aggregate-owned dictionary for a string key column.
	// Producer codes are remapped into it per batch, so key slots stay
	// stable even though scan batches carry fresh dictionaries.
	dict  *vec.Dict
	remap []int32
}

// vecSpecAcc is the per-batch accessor for one aggregate argument.
type vecSpecAcc struct {
	mode uint8 // 0=COUNT(*), 1=typed int, 2=typed float, 3=boxed column, 4=row eval
	kind types.Kind
	col  *vec.Col
}

// VecHashAggregate is the vector-native grouping operator: group keys are
// read straight off typed column slabs into a comparable struct key — the
// row path's per-row scratch key encoding (evaluate, box, binary-encode,
// map[string] lookup) goes away — and aggregate arguments accumulate from
// unboxed payloads. Semantics mirror HashAggregate exactly: same output
// schema, same NULL handling, same spill discipline (new groups past the
// MemRows budget spill their raw input rows; spilled keys are provably
// disjoint from in-memory groups, so the overflow pass is delegated to an
// inner row HashAggregate over the spill file).
//
// Unsupported shapes (Merge/Final modes, >2 group keys, non-column or
// float-keyed grouping, DISTINCT) never reach this type: the constructor
// returns an adapted row HashAggregate instead.
type VecHashAggregate struct {
	ctx      *Ctx
	in       VecOperator
	groupBy  []expr.Expr
	specs    []AggSpec
	mode     AggMode
	out      types.Schema
	keys     []vecKeyCol
	accs     []vecSpecAcc
	escape   map[string]uint64
	groups   map[vecAggKey]*aggGroup
	results  []types.Row
	pos      int
	prepared bool
	ob       *vec.Batch
	scratch  types.Row
}

// NewVecHashAggregate builds a vector aggregation over a vector input.
// Shapes the typed fast path cannot group fall back to the row operator
// behind batch/vector adapters, so the constructor is total.
func NewVecHashAggregate(ctx *Ctx, in VecOperator, groupBy []expr.Expr, specs []AggSpec, mode AggMode) VecOperator {
	if !vecAggSupported(in.Schema(), groupBy, specs, mode) {
		return ToVec(NewHashAggregate(ctx, FromVec(in), groupBy, specs, mode), ctx.batchRows())
	}
	a := &VecHashAggregate{ctx: ctx, in: in, groupBy: groupBy, specs: specs, mode: mode}
	a.out = aggOutputSchema(in.Schema(), groupBy, specs, mode)
	inSch := in.Schema()
	for _, g := range groupBy {
		c := g.(*expr.Col)
		kc := vecKeyCol{idx: c.Index, kind: inSch.Cols[c.Index].Kind}
		if kc.kind == types.KindString {
			kc.dict = vec.NewDict()
		}
		a.keys = append(a.keys, kc)
	}
	a.accs = make([]vecSpecAcc, len(specs))
	return a
}

// vecAggSupported reports whether the typed fast path can run this shape.
func vecAggSupported(inSch types.Schema, groupBy []expr.Expr, specs []AggSpec, mode AggMode) bool {
	if mode != AggComplete && mode != AggPartial {
		return false
	}
	if len(groupBy) > 2 {
		return false
	}
	for _, g := range groupBy {
		c, ok := g.(*expr.Col)
		if !ok || c.Index < 0 || c.Index >= inSch.Len() {
			return false
		}
		switch inSch.Cols[c.Index].Kind {
		case types.KindInt, types.KindDate, types.KindBool, types.KindString:
		default:
			return false
		}
	}
	for _, sp := range specs {
		if sp.Distinct {
			return false
		}
	}
	return true
}

// Schema implements Operator.
func (a *VecHashAggregate) Schema() types.Schema { return a.out }

// Open implements Operator.
func (a *VecHashAggregate) Open() error {
	a.results, a.pos, a.prepared = nil, 0, false
	a.groups = nil
	a.escape = nil
	return a.in.Open()
}

// Close implements Operator.
func (a *VecHashAggregate) Close() error { return a.in.Close() }

// escapeCode interns the binary encoding of a value whose kind does not
// match its column's schema kind (possible only on a demoted mixed-kind
// column) and returns a sequential id for the key slot. Escaped slots are
// flagged in vecAggKey, so ids never collide with raw payloads.
func (a *VecHashAggregate) escapeCode(v types.Value) uint64 {
	if a.escape == nil {
		a.escape = map[string]uint64{}
	}
	k := string(types.AppendValue(nil, v))
	c, ok := a.escape[k]
	if !ok {
		c = uint64(len(a.escape))
		a.escape[k] = c
	}
	return c
}

// prepare drains the vector input building group states, then emits result
// rows and folds any spilled rows through an inner row aggregate.
func (a *VecHashAggregate) prepare() error {
	a.groups = make(map[vecAggKey]*aggGroup)
	var spill *spillWriter
	fail := func(err error) error {
		if spill != nil {
			spill.abort()
		}
		return err
	}
	for {
		b, ok, err := a.in.NextVec()
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		if err := a.ingest(b, &spill); err != nil {
			return fail(err)
		}
	}
	a.emit()

	// Spilled rows hold exactly the groups that never fit in memory, so the
	// overflow pass is a self-contained row aggregation whose output rows
	// append directly to ours (it applies the same MemRows budget and
	// recurses over its own spill passes).
	if spill != nil {
		rd, err := spill.finish()
		if err != nil {
			return err
		}
		inner := NewHashAggregate(a.ctx, &spillSource{sch: a.in.Schema(), rd: rd}, a.groupBy, a.specs, a.mode)
		if err := inner.Open(); err != nil {
			rd.close()
			return err
		}
		for {
			r, ok, err := inner.Next()
			if err != nil {
				inner.Close()
				return err
			}
			if !ok {
				break
			}
			a.results = append(a.results, r)
		}
		if err := inner.Close(); err != nil {
			return err
		}
	}

	// No GROUP BY: SQL semantics require one output row even on empty input.
	if len(a.groupBy) == 0 && len(a.results) == 0 {
		st := newAggState(false)
		out := types.Row{}
		if a.mode == AggPartial {
			for range a.specs {
				out = append(out, st.partial()...)
			}
		} else {
			for _, sp := range a.specs {
				out = append(out, st.final(sp.Kind))
			}
		}
		a.results = append(a.results, out)
	}
	a.prepared = true
	return nil
}

// ingest folds one input batch into the group table.
func (a *VecHashAggregate) ingest(b *vec.Batch, spill **spillWriter) error {
	n := b.Rows()
	if n == 0 {
		return nil
	}
	if a.ctx != nil {
		a.ctx.RowsProcessed.Add(int64(n))
	}

	// Per-batch key-column state: a fresh producer dictionary needs a fresh
	// remap table (filled lazily, one entry per distinct code).
	for ki := range a.keys {
		kc := &a.keys[ki]
		c := &b.Cols[kc.idx]
		if c.Form == vec.FormStr && c.Dict != nil {
			dl := c.Dict.Len()
			if cap(kc.remap) < dl {
				kc.remap = make([]int32, dl)
			} else {
				kc.remap = kc.remap[:dl]
			}
			for j := range kc.remap {
				kc.remap[j] = -1
			}
		}
	}

	// Per-batch argument accessors.
	for si := range a.specs {
		ac := &a.accs[si]
		ac.mode, ac.col = 4, nil
		if a.specs[si].Arg == nil {
			ac.mode = 0
			continue
		}
		if c, ok := a.specs[si].Arg.(*expr.Col); ok && c.Index >= 0 && c.Index < len(b.Cols) {
			col := &b.Cols[c.Index]
			switch col.Form {
			case vec.FormInt:
				ac.mode, ac.col, ac.kind = 1, col, col.Kind
			case vec.FormFloat:
				ac.mode, ac.col = 2, col
			default:
				ac.mode, ac.col = 3, col
			}
		}
	}

	if a.scratch == nil {
		a.scratch = make(types.Row, len(b.Cols))
	}
	for k := 0; k < n; k++ {
		i := b.Index(k)
		var key vecAggKey
		for ki := range a.keys {
			kc := &a.keys[ki]
			c := &b.Cols[kc.idx]
			var u uint64
			var null, esc bool
			switch {
			case c.Form == vec.FormInt && c.Kind == kc.kind:
				if c.IsNull(i) {
					null = true
				} else {
					u = uint64(c.I[i])
				}
			case c.Form == vec.FormStr:
				if c.IsNull(i) {
					null = true
				} else {
					code := c.Codes[i]
					m := kc.remap[code]
					if m < 0 {
						m = kc.dict.Code(c.Dict.Str(code))
						kc.remap[code] = m
					}
					u = uint64(m)
				}
			default:
				v := c.Value(i)
				switch {
				case v.K == types.KindNull:
					null = true
				case v.K == kc.kind && kc.kind == types.KindString:
					u = uint64(kc.dict.Code(v.S))
				case v.K == kc.kind:
					u = uint64(v.I)
				default:
					u, esc = a.escapeCode(v), true
				}
			}
			if ki == 0 {
				key.v0 = u
				if null {
					key.flags |= vkNull0
				}
				if esc {
					key.flags |= vkEsc0
				}
			} else {
				key.v1 = u
				if null {
					key.flags |= vkNull1
				}
				if esc {
					key.flags |= vkEsc1
				}
			}
		}

		g, ok := a.groups[key]
		if !ok {
			if a.ctx != nil && a.ctx.MemRows > 0 && len(a.groups) >= a.ctx.MemRows {
				if *spill == nil {
					sw, err := newSpillWriter(a.ctx, "agg-spill-*")
					if err != nil {
						return err
					}
					*spill = sw
				}
				if err := (*spill).write(b.ReadRow(i, a.scratch)); err != nil {
					return err
				}
				continue
			}
			keyRow := make(types.Row, len(a.keys))
			for ki := range a.keys {
				keyRow[ki] = b.Cols[a.keys[ki].idx].Value(i)
			}
			g = &aggGroup{key: keyRow, states: make([]*aggState, len(a.specs))}
			for si := range a.specs {
				g.states[si] = newAggState(false)
			}
			a.groups[key] = g
			if a.ctx != nil {
				a.ctx.addState(int64(types.RowEncodedSize(keyRow)) + int64(48*len(a.specs)))
			}
		}

		var row types.Row
		for si := range a.specs {
			ac := &a.accs[si]
			st := g.states[si]
			switch ac.mode {
			case 0:
				st.addCountStar()
			case 1:
				if !ac.col.IsNull(i) {
					st.addInt(ac.kind, ac.col.I[i])
				}
			case 2:
				if !ac.col.IsNull(i) {
					st.addFloat(ac.col.F[i])
				}
			case 3:
				st.add(ac.col.Value(i))
			default:
				if row == nil {
					row = b.ReadRow(i, a.scratch)
				}
				v, err := a.specs[si].Arg.Eval(row)
				if err != nil {
					return err
				}
				st.add(v)
			}
		}
	}
	return nil
}

// emit renders the in-memory groups as result rows and drops the table.
func (a *VecHashAggregate) emit() {
	for _, g := range a.groups {
		out := g.key.Clone()
		if a.mode == AggPartial {
			for _, st := range g.states {
				out = append(out, st.partial()...)
			}
		} else {
			for si, sp := range a.specs {
				out = append(out, g.states[si].final(sp.Kind))
			}
		}
		a.results = append(a.results, out)
	}
	a.groups = nil
}

// Next implements Operator.
func (a *VecHashAggregate) Next() (types.Row, bool, error) {
	if !a.prepared {
		if err := a.prepare(); err != nil {
			return nil, false, err
		}
	}
	if a.pos >= len(a.results) {
		return nil, false, nil
	}
	r := a.results[a.pos]
	a.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator, serving prepared results in windows.
func (a *VecHashAggregate) NextBatch() ([]types.Row, bool, error) {
	if !a.prepared {
		if err := a.prepare(); err != nil {
			return nil, false, err
		}
	}
	if a.pos >= len(a.results) {
		return nil, false, nil
	}
	end := a.pos + a.ctx.batchRows()
	if end > len(a.results) {
		end = len(a.results)
	}
	out := a.results[a.pos:end]
	a.pos = end
	return out, true, nil
}

// NextVec implements VecOperator, serving prepared results as vector
// batches (re-vectorized windows over the result rows).
func (a *VecHashAggregate) NextVec() (*vec.Batch, bool, error) {
	if !a.prepared {
		if err := a.prepare(); err != nil {
			return nil, false, err
		}
	}
	if a.pos >= len(a.results) {
		return nil, false, nil
	}
	end := a.pos + a.ctx.batchRows()
	if end > len(a.results) {
		end = len(a.results)
	}
	a.ob = vec.FromRows(a.out, a.results[a.pos:end], a.ob)
	a.pos = end
	return a.ob, true, nil
}

// spillSource adapts a spillReader to the Operator interface so spilled
// rows can feed an inner aggregation directly.
type spillSource struct {
	sch types.Schema
	rd  *spillReader
}

func (s *spillSource) Schema() types.Schema { return s.sch }

func (s *spillSource) Open() error { return nil }

func (s *spillSource) Next() (types.Row, bool, error) { return s.rd.next() }

func (s *spillSource) Close() error {
	s.rd.close()
	return nil
}
