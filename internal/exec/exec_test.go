package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

func intSchema(names ...string) types.Schema {
	cols := make([]types.Column, len(names))
	for i, n := range names {
		cols[i] = types.Column{Name: n, Kind: types.KindInt}
	}
	return types.Schema{Cols: cols}
}

func intRows(vals ...[]int64) []types.Row {
	out := make([]types.Row, len(vals))
	for i, v := range vals {
		r := make(types.Row, len(v))
		for j, x := range v {
			r[j] = types.NewInt(x)
		}
		out[i] = r
	}
	return out
}

func col(i int) *expr.Col          { return &expr.Col{Index: i, Name: fmt.Sprintf("c%d", i)} }
func ci(v int64) *expr.Const       { return &expr.Const{V: types.NewInt(v)} }
func gt(l, r expr.Expr) *expr.Bin  { return &expr.Bin{Op: expr.OpGt, L: l, R: r} }
func eq(l, r expr.Expr) *expr.Bin  { return &expr.Bin{Op: expr.OpEq, L: l, R: r} }
func add(l, r expr.Expr) *expr.Bin { return &expr.Bin{Op: expr.OpAdd, L: l, R: r} }

func TestFilterProject(t *testing.T) {
	src := NewSource(intSchema("a", "b"), intRows([]int64{1, 10}, []int64{2, 20}, []int64{3, 30}))
	f := NewFilter(nil, src, gt(col(0), ci(1)))
	p := NewProject(nil, f, []expr.Expr{add(col(0), col(1))}, []string{"s"})
	rows, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Int() != 22 || rows[1][0].Int() != 33 {
		t.Fatalf("rows = %v", rows)
	}
	if p.Schema().Cols[0].Name != "s" || p.Schema().Cols[0].Kind != types.KindInt {
		t.Errorf("schema = %v", p.Schema())
	}
}

func TestLimitOffset(t *testing.T) {
	src := NewSource(intSchema("a"), intRows([]int64{1}, []int64{2}, []int64{3}, []int64{4}, []int64{5}))
	rows, err := Collect(NewLimit(src, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Int() != 2 || rows[1][0].Int() != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestUnionDistinct(t *testing.T) {
	a := NewSource(intSchema("a"), intRows([]int64{1}, []int64{2}))
	b := NewSource(intSchema("a"), intRows([]int64{2}, []int64{3}))
	rows, err := Collect(NewDistinct(NewUnion(a, b)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("distinct union = %v", rows)
	}
}

func TestHashAggregateComplete(t *testing.T) {
	src := NewSource(intSchema("g", "v"), intRows(
		[]int64{1, 10}, []int64{2, 5}, []int64{1, 20}, []int64{2, 7}, []int64{3, 1},
	))
	agg := NewHashAggregate(nil, src, ColRefs(0), []AggSpec{
		{Kind: AggSum, Arg: col(1), Name: "s"},
		{Kind: AggCount, Arg: nil, Name: "c"},
		{Kind: AggAvg, Arg: col(1), Name: "a"},
		{Kind: AggMin, Arg: col(1), Name: "mn"},
		{Kind: AggMax, Arg: col(1), Name: "mx"},
	}, AggComplete)
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	byG := map[int64]types.Row{}
	for _, r := range rows {
		byG[r[0].Int()] = r
	}
	g1 := byG[1]
	if g1[1].Int() != 30 || g1[2].Int() != 2 || g1[3].Float() != 15 || g1[4].Int() != 10 || g1[5].Int() != 20 {
		t.Errorf("group 1 = %v", g1)
	}
}

func TestHashAggregateNoGroupByEmptyInput(t *testing.T) {
	src := NewSource(intSchema("v"), nil)
	agg := NewHashAggregate(nil, src, nil, []AggSpec{
		{Kind: AggCount, Name: "c"},
		{Kind: AggSum, Arg: col(0), Name: "s"},
	}, AggComplete)
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("scalar aggregate on empty input must yield one row, got %d", len(rows))
	}
	if rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Errorf("empty agg = %v (COUNT=0, SUM=NULL expected)", rows[0])
	}
}

func TestHashAggregatePartialFinal(t *testing.T) {
	// Simulate the paper's pre-aggregation: two workers partially
	// aggregate, the coordinator merges to final.
	mk := func(rows []types.Row) *HashAggregate {
		src := NewSource(intSchema("g", "v"), rows)
		return NewHashAggregate(nil, src, ColRefs(0), []AggSpec{
			{Kind: AggAvg, Arg: col(1), Name: "a"},
			{Kind: AggCount, Name: "c"},
		}, AggPartial)
	}
	w1, err := Collect(mk(intRows([]int64{1, 10}, []int64{2, 4})))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Collect(mk(intRows([]int64{1, 30}, []int64{2, 6}, []int64{1, 20})))
	if err != nil {
		t.Fatal(err)
	}
	partialSchema := mk(nil).Schema()
	merged := NewSource(partialSchema, append(w1, w2...))
	final := NewHashAggregate(nil, merged, ColRefs(0), []AggSpec{
		{Kind: AggAvg, Name: "a"},
		{Kind: AggCount, Name: "c"},
	}, AggFinal)
	rows, err := Collect(final)
	if err != nil {
		t.Fatal(err)
	}
	byG := map[int64]types.Row{}
	for _, r := range rows {
		byG[r[0].Int()] = r
	}
	if byG[1][1].Float() != 20 { // avg(10,30,20)
		t.Errorf("avg group 1 = %v", byG[1])
	}
	if byG[1][2].Int() != 3 || byG[2][2].Int() != 2 {
		t.Errorf("counts = %v / %v", byG[1], byG[2])
	}
}

func TestHashAggregateSpill(t *testing.T) {
	ctx := NewCtx(t.TempDir(), 10) // only 10 groups in memory
	var rows []types.Row
	for i := int64(0); i < 1000; i++ {
		rows = append(rows, types.Row{types.NewInt(i % 100), types.NewInt(i)})
	}
	src := NewSource(intSchema("g", "v"), rows)
	agg := NewHashAggregate(ctx, src, ColRefs(0), []AggSpec{{Kind: AggCount, Name: "c"}}, AggComplete)
	out, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("groups = %d, want 100", len(out))
	}
	for _, r := range out {
		if r[1].Int() != 10 {
			t.Fatalf("group %d count = %d", r[0].Int(), r[1].Int())
		}
	}
	if ctx.SpillFiles.Load() == 0 {
		t.Error("expected spilling with tiny budget")
	}
}

func TestCountDistinct(t *testing.T) {
	src := NewSource(intSchema("g", "v"), intRows(
		[]int64{1, 5}, []int64{1, 5}, []int64{1, 7}, []int64{2, 5},
	))
	agg := NewHashAggregate(nil, src, ColRefs(0), []AggSpec{
		{Kind: AggCount, Arg: col(1), Distinct: true, Name: "cd"},
	}, AggComplete)
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	byG := map[int64]int64{}
	for _, r := range rows {
		byG[r[0].Int()] = r[1].Int()
	}
	if byG[1] != 2 || byG[2] != 1 {
		t.Errorf("count distinct = %v", byG)
	}
}

func TestSortInMemory(t *testing.T) {
	src := NewSource(intSchema("a", "b"), intRows(
		[]int64{3, 1}, []int64{1, 2}, []int64{2, 3}, []int64{1, 1},
	))
	s := NewSort(nil, src, []SortKey{{Col: 0}, {Col: 1, Desc: true}})
	rows, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{1, 2}, {1, 1}, {2, 3}, {3, 1}}
	for i, w := range want {
		if rows[i][0].Int() != w[0] || rows[i][1].Int() != w[1] {
			t.Fatalf("rows = %v", rows)
		}
	}
}

func TestSortExternalSpill(t *testing.T) {
	ctx := NewCtx(t.TempDir(), 50)
	rng := rand.New(rand.NewSource(3))
	var rows []types.Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(rng.Intn(10000)))})
	}
	src := NewSource(intSchema("a"), rows)
	s := NewSort(ctx, src, []SortKey{{Col: 0}})
	out, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1000 {
		t.Fatalf("rows = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i][0].Int() < out[i-1][0].Int() {
			t.Fatalf("out of order at %d", i)
		}
	}
	if ctx.SpillFiles.Load() == 0 {
		t.Error("expected sort runs to spill")
	}
}

func TestTopK(t *testing.T) {
	var rows []types.Row
	for i := int64(0); i < 100; i++ {
		rows = append(rows, types.Row{types.NewInt(i)})
	}
	rand.New(rand.NewSource(1)).Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	src := NewSource(intSchema("a"), rows)
	// Top 5 by descending a: 99..95.
	tk := NewTopK(nil, src, []SortKey{{Col: 0, Desc: true}}, 5)
	out, err := Collect(tk)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("topk = %v", out)
	}
	for i, want := range []int64{99, 98, 97, 96, 95} {
		if out[i][0].Int() != want {
			t.Fatalf("topk = %v", out)
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	src := NewSource(intSchema("a"), intRows([]int64{2}, []int64{1}))
	out, err := Collect(NewTopK(nil, src, []SortKey{{Col: 0}}, 10))
	if err != nil || len(out) != 2 || out[0][0].Int() != 1 {
		t.Fatalf("out = %v err=%v", out, err)
	}
}

func TestHashJoinInner(t *testing.T) {
	probe := NewSource(intSchema("pk", "pv"), intRows([]int64{1, 100}, []int64{2, 200}, []int64{3, 300}))
	build := NewSource(intSchema("bk", "bv"), intRows([]int64{1, 11}, []int64{3, 33}, []int64{3, 34}))
	j := NewHashJoin(nil, probe, build, ColRefs(0), ColRefs(0), JoinInner, nil, 1)
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // 1 match + 2 matches for key 3
		t.Fatalf("join rows = %v", rows)
	}
	if j.Schema().Len() != 4 {
		t.Errorf("join schema = %v", j.Schema())
	}
}

func TestHashJoinResidual(t *testing.T) {
	probe := NewSource(intSchema("pk", "pv"), intRows([]int64{1, 100}, []int64{1, 5}))
	build := NewSource(intSchema("bk", "bv"), intRows([]int64{1, 50}))
	// Residual: pv > bv (probe col 1 vs build col 1 = joined col 3).
	resid := gt(col(1), col(3))
	j := NewHashJoin(nil, probe, build, ColRefs(0), ColRefs(0), JoinInner, resid, 1)
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].Int() != 100 {
		t.Fatalf("residual join = %v", rows)
	}
}

func TestHashJoinSemiAnti(t *testing.T) {
	probe := NewSource(intSchema("pk"), intRows([]int64{1}, []int64{2}, []int64{3}))
	buildRows := intRows([]int64{2}, []int64{2}, []int64{3})
	semi := NewHashJoin(nil, probe, NewSource(intSchema("bk"), buildRows), ColRefs(0), ColRefs(0), JoinSemi, nil, 1)
	rows, err := Collect(semi)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // 2 and 3, each ONCE despite duplicate build keys
		t.Fatalf("semi = %v", rows)
	}
	probe2 := NewSource(intSchema("pk"), intRows([]int64{1}, []int64{2}, []int64{3}))
	anti := NewHashJoin(nil, probe2, NewSource(intSchema("bk"), buildRows), ColRefs(0), ColRefs(0), JoinAnti, nil, 1)
	rows, err = Collect(anti)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 1 {
		t.Fatalf("anti = %v", rows)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	probe := NewSource(intSchema("pk"), []types.Row{{types.Null}, {types.NewInt(1)}})
	build := NewSource(intSchema("bk"), []types.Row{{types.Null}, {types.NewInt(1)}})
	j := NewHashJoin(nil, probe, build, ColRefs(0), ColRefs(0), JoinInner, nil, 1)
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("null keys matched: %v", rows)
	}
}

func TestHashJoinParallelProbe(t *testing.T) {
	var probeRows, buildRows []types.Row
	for i := int64(0); i < 5000; i++ {
		probeRows = append(probeRows, types.Row{types.NewInt(i % 100), types.NewInt(i)})
	}
	for i := int64(0); i < 100; i += 2 {
		buildRows = append(buildRows, types.Row{types.NewInt(i)})
	}
	probe := NewSource(intSchema("pk", "pv"), probeRows)
	build := NewSource(intSchema("bk"), buildRows)
	j := NewHashJoin(nil, probe, build, ColRefs(0), ColRefs(0), JoinInner, nil, 4)
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2500 { // even keys: 50 keys × 50 probe rows each
		t.Fatalf("parallel join rows = %d, want 2500", len(rows))
	}
}

func TestHashJoinGraceSpill(t *testing.T) {
	ctx := NewCtx(t.TempDir(), 64) // build side must spill
	var probeRows, buildRows []types.Row
	for i := int64(0); i < 2000; i++ {
		buildRows = append(buildRows, types.Row{types.NewInt(i), types.NewInt(i * 10)})
	}
	for i := int64(0); i < 500; i++ {
		probeRows = append(probeRows, types.Row{types.NewInt(i * 4)})
	}
	probe := NewSource(intSchema("pk"), probeRows)
	build := NewSource(intSchema("bk", "bv"), buildRows)
	j := NewHashJoin(ctx, probe, build, ColRefs(0), ColRefs(0), JoinInner, nil, 1)
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Fatalf("grace join rows = %d, want 500", len(rows))
	}
	if ctx.SpillFiles.Load() == 0 {
		t.Error("expected grace join to spill")
	}
	for _, r := range rows {
		if r[2].Int() != r[0].Int()*10 {
			t.Fatalf("bad join pair %v", r)
		}
	}
}

func TestHashJoinGraceAnti(t *testing.T) {
	ctx := NewCtx(t.TempDir(), 16)
	var buildRows []types.Row
	for i := int64(0); i < 100; i++ {
		buildRows = append(buildRows, types.Row{types.NewInt(i)})
	}
	probe := NewSource(intSchema("pk"), intRows([]int64{5}, []int64{500}))
	build := NewSource(intSchema("bk"), buildRows)
	j := NewHashJoin(ctx, probe, build, ColRefs(0), ColRefs(0), JoinAnti, nil, 1)
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 500 {
		t.Fatalf("grace anti = %v", rows)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	left := NewSource(intSchema("a"), intRows([]int64{1}, []int64{5}))
	right := NewSource(intSchema("b"), intRows([]int64{2}, []int64{3}))
	// Non-equi condition a < b.
	cond := &expr.Bin{Op: expr.OpLt, L: col(0), R: col(1)}
	j := NewNestedLoopJoin(nil, left, right, cond, JoinInner)
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // 1<2, 1<3
		t.Fatalf("nlj = %v", rows)
	}
	// Anti: rows with no b > a.
	left2 := NewSource(intSchema("a"), intRows([]int64{1}, []int64{5}))
	right2 := NewSource(intSchema("b"), intRows([]int64{2}, []int64{3}))
	anti := NewNestedLoopJoin(nil, left2, right2, cond, JoinAnti)
	rows, err = Collect(anti)
	if err != nil || len(rows) != 1 || rows[0][0].Int() != 5 {
		t.Fatalf("nlj anti = %v err=%v", rows, err)
	}
}

func TestBloom(t *testing.T) {
	b := NewBloom(1 << 12)
	for i := uint64(0); i < 100; i++ {
		b.Add(i * 7919)
	}
	for i := uint64(0); i < 100; i++ {
		if !b.MayContain(i * 7919) {
			t.Fatalf("bloom false negative for %d", i)
		}
	}
	// False positive rate sanity: mostly absent keys rejected.
	fp := 0
	for i := uint64(1); i <= 1000; i++ {
		if b.MayContain(i*7919 + 3) {
			fp++
		}
	}
	if fp > 200 {
		t.Errorf("bloom false positives = %d/1000", fp)
	}
	// Round trip encoding.
	b2, err := DecodeBloom(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if !b2.MayContain(i * 7919) {
			t.Fatal("decoded bloom lost keys")
		}
	}
	if _, err := DecodeBloom([]byte{1, 2, 3}); err == nil {
		t.Error("bad length should fail")
	}
}

func TestMergeOperators(t *testing.T) {
	a := NewSource(intSchema("x"), intRows([]int64{1}, []int64{4}, []int64{9}))
	b := NewSource(intSchema("x"), intRows([]int64{2}, []int64{3}, []int64{10}))
	c := NewSource(intSchema("x"), intRows([]int64{5}))
	m := NewMergeOperators([]Operator{a, b, c}, []SortKey{{Col: 0}})
	rows, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 4, 5, 9, 10}
	if len(rows) != len(want) {
		t.Fatalf("merge = %v", rows)
	}
	for i, w := range want {
		if rows[i][0].Int() != w {
			t.Fatalf("merge = %v", rows)
		}
	}
}

func TestSpillRoundTrip(t *testing.T) {
	ctx := NewCtx(t.TempDir(), 0)
	w, err := newSpillWriter(ctx, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	want := []types.Row{
		{types.NewInt(1), types.NewString("x")},
		{types.Null, types.NewFloat(2.5)},
	}
	for _, r := range want {
		if err := w.write(r); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := w.finish()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.close()
	for i := range want {
		r, ok, err := rd.next()
		if err != nil || !ok {
			t.Fatalf("read %d: %v %v", i, ok, err)
		}
		if types.Compare(r[0], want[i][0]) != 0 {
			t.Fatalf("row %d = %v", i, r)
		}
	}
	if _, ok, _ := rd.next(); ok {
		t.Error("extra rows after end")
	}
}

func TestParallelBudgetAdaptsDegree(t *testing.T) {
	ctx := NewCtx(t.TempDir(), 0)
	ctx.SetParallelBudget(3)
	// First acquire takes the whole budget beyond the free degree.
	if got := ctx.AcquireWorkers(8); got != 4 { // 1 free + 3 tokens
		t.Fatalf("first acquire = %d, want 4", got)
	}
	// A concurrent operator degrades to a single thread.
	if got := ctx.AcquireWorkers(8); got != 1 {
		t.Fatalf("second acquire under load = %d, want 1", got)
	}
	ctx.ReleaseWorkers(4)
	if got := ctx.AcquireWorkers(2); got != 2 {
		t.Fatalf("after release = %d, want 2", got)
	}
	ctx.ReleaseWorkers(2)
	// No budget configured: requests granted in full.
	free := NewCtx(t.TempDir(), 0)
	if got := free.AcquireWorkers(6); got != 6 {
		t.Fatalf("unbudgeted acquire = %d", got)
	}
	// Joins still work under a zero budget (degrade to 1 thread).
	zero := NewCtx(t.TempDir(), 0)
	zero.SetParallelBudget(0)
	probe := NewSource(intSchema("k"), intRows([]int64{1}, []int64{2}))
	build := NewSource(intSchema("k"), intRows([]int64{2}))
	j := NewHashJoin(zero, probe, build, ColRefs(0), ColRefs(0), JoinInner, nil, 8)
	rows, err := Collect(j)
	if err != nil || len(rows) != 1 {
		t.Fatalf("join under zero budget: %v %v", rows, err)
	}
}
