package exec

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/testutil"
	"repro/internal/tpch"
	"repro/internal/types"
)

func lt(l, r expr.Expr) *expr.Bin { return &expr.Bin{Op: expr.OpLt, L: l, R: r} }
func cf(v float64) *expr.Const    { return &expr.Const{V: types.NewFloat(v)} }
func cs(s string) *expr.Const     { return &expr.Const{V: types.NewString(s)} }

// TestVecRowParityPipeline runs the same scan→filter→project→aggregate
// pipeline on the scalar engine and on the typed vector path at several
// batch sizes, and demands identical results. The vector operators must be
// native (not silent fallbacks to the boxed engine).
func TestVecRowParityPipeline(t *testing.T) {
	var rows []types.Row
	for i := int64(0); i < 5000; i++ {
		rows = append(rows, types.Row{types.NewInt(i % 37), types.NewInt(i)})
	}
	sch := intSchema("g", "v")
	rowPipe := func(ctx *Ctx) Operator {
		f := NewFilter(ctx, RowOnly(NewSource(sch, rows)), gt(col(1), ci(99)))
		p := NewProject(ctx, RowOnly(f), []expr.Expr{col(0), add(col(1), ci(1))}, []string{"g", "v1"})
		return NewHashAggregate(ctx, RowOnly(p), ColRefs(0), []AggSpec{
			{Kind: AggSum, Arg: col(1), Name: "s"},
			{Kind: AggCount, Name: "c"},
		}, AggComplete)
	}
	vecPipe := func(ctx *Ctx, size int) Operator {
		in := ToVec(RowOnly(NewSource(sch, rows)), size)
		f := NewVecFilter(ctx, in, gt(col(1), ci(99)))
		p := NewVecProject(ctx, f, []expr.Expr{col(0), add(col(1), ci(1))}, []string{"g", "v1"})
		a := NewVecHashAggregate(ctx, p, ColRefs(0), []AggSpec{
			{Kind: AggSum, Arg: col(1), Name: "s"},
			{Kind: AggCount, Name: "c"},
		}, AggComplete)
		if _, ok := a.(*VecHashAggregate); !ok {
			t.Fatal("integer group keys must run on the native vector aggregate")
		}
		return FromVec(a)
	}
	want, err := Collect(rowPipe(NewCtx("", 0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 37 {
		t.Fatalf("baseline groups = %d, want 37", len(want))
	}
	for _, size := range []int{1, 7, 1024} {
		ctx := NewCtx("", 0)
		ctx.BatchRows = size
		got, err := Collect(vecPipe(ctx, size))
		if err != nil {
			t.Fatalf("vec batch=%d: %v", size, err)
		}
		assertSameRows(t, got, want)
	}
}

// TestVecRowParityTPCHAgg golden-compares a TPC-H Q1-style aggregation —
// dictionary-string group keys, float sums and averages, a float filter —
// between the row engine and the vector path on SF0.01.
func TestVecRowParityTPCHAgg(t *testing.T) {
	d := tpch.Generate(0.01, 42)
	sch := schemaFor(d.Lineitem[0])
	groupBy := ColRefs(8, 9) // l_returnflag, l_linestatus
	specs := []AggSpec{
		{Kind: AggSum, Arg: col(4), Name: "sum_qty"},
		{Kind: AggAvg, Arg: col(5), Name: "avg_price"},
		{Kind: AggMin, Arg: col(6), Name: "min_disc"},
		{Kind: AggMax, Arg: col(6), Name: "max_disc"},
		{Kind: AggCount, Name: "cnt"},
	}
	pred := lt(col(4), cf(25))
	row := NewHashAggregate(NewCtx("", 0), RowOnly(NewFilter(NewCtx("", 0), RowOnly(NewSource(sch, d.Lineitem)), pred)), groupBy, specs, AggComplete)
	want, err := Collect(row)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx("", 0)
	in := NewVecFilter(ctx, ToVec(RowOnly(NewSource(sch, d.Lineitem)), 512), pred)
	a := NewVecHashAggregate(ctx, in, groupBy, specs, AggComplete)
	if _, ok := a.(*VecHashAggregate); !ok {
		t.Fatal("string group keys must run on the native vector aggregate")
	}
	got, err := Collect(FromVec(a))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, got, want)
}

// nullify returns a copy of rows with NULLs injected: col a on every 3rd
// row and col b on every 5th, exercising null bitmaps in slabs, null group
// keys, and null-skipping aggregate inputs.
func nullify(rows []types.Row, a, b int) []types.Row {
	out := make([]types.Row, len(rows))
	for i, r := range rows {
		cp := append(types.Row(nil), r...)
		if i%3 == 0 {
			cp[a] = types.Null
		}
		if i%5 == 0 {
			cp[b] = types.Null
		}
		out[i] = cp
	}
	return out
}

// TestVecRowParityNulls aggregates NULL-heavy data — null measure values
// (skipped by SUM/COUNT/MIN/MAX) and null group keys (a group of their
// own) — and demands row/vector parity.
func TestVecRowParityNulls(t *testing.T) {
	d := tpch.Generate(0.01, 7)
	rows := nullify(d.Lineitem[:20000], 4, 8)
	sch := schemaFor(d.Lineitem[0])
	groupBy := ColRefs(8)
	specs := []AggSpec{
		{Kind: AggSum, Arg: col(4), Name: "s"},
		{Kind: AggCount, Arg: col(4), Name: "c"},
		{Kind: AggMin, Arg: col(4), Name: "lo"},
		{Kind: AggMax, Arg: col(4), Name: "hi"},
	}
	want, err := Collect(NewHashAggregate(NewCtx("", 0), RowOnly(NewSource(sch, rows)), groupBy, specs, AggComplete))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 4 { // R, A, N, NULL
		t.Fatalf("baseline groups = %d, want 4 (incl. the NULL-key group)", len(want))
	}
	ctx := NewCtx("", 0)
	a := NewVecHashAggregate(ctx, ToVec(RowOnly(NewSource(sch, rows)), 256), groupBy, specs, AggComplete)
	got, err := Collect(FromVec(a))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, got, want)
}

// TestVecAggSpillParity shrinks the group budget until the vector
// aggregate spills and golden-compares the merged output with the
// (equally spilling) row aggregate.
func TestVecAggSpillParity(t *testing.T) {
	d := tpch.Generate(0.01, 11)
	sch := schemaFor(d.Lineitem[0])
	groupBy := ColRefs(1) // l_partkey: ~2000 groups
	specs := []AggSpec{
		{Kind: AggSum, Arg: col(4), Name: "s"},
		{Kind: AggCount, Name: "c"},
	}
	rowCtx := NewCtx(t.TempDir(), 500)
	want, err := Collect(NewHashAggregate(rowCtx, RowOnly(NewSource(sch, d.Lineitem)), groupBy, specs, AggComplete))
	if err != nil {
		t.Fatal(err)
	}
	vecCtx := NewCtx(t.TempDir(), 500)
	a := NewVecHashAggregate(vecCtx, ToVec(RowOnly(NewSource(sch, d.Lineitem)), 512), groupBy, specs, AggComplete)
	got, err := Collect(FromVec(a))
	if err != nil {
		t.Fatal(err)
	}
	if rowCtx.SpillFiles.Load() == 0 || vecCtx.SpillFiles.Load() == 0 {
		t.Fatalf("aggregate must spill on both paths (row=%d vec=%d files)",
			rowCtx.SpillFiles.Load(), vecCtx.SpillFiles.Load())
	}
	assertSameRows(t, got, want)
}

// TestVecJoinParity joins lineitem to orders on the integer order key and
// lineitem to a tiny flag dimension on a dictionary-string key, comparing
// the native vector join against the row join.
func TestVecJoinParity(t *testing.T) {
	d := tpch.Generate(0.01, 42)
	lineSch := schemaFor(d.Lineitem[0])
	ordSch := schemaFor(d.Orders[0])

	t.Run("int-keys", func(t *testing.T) {
		want, err := Collect(NewHashJoin(NewCtx("", 0),
			RowOnly(NewSource(lineSch, d.Lineitem)), RowOnly(NewSource(ordSch, d.Orders)),
			ColRefs(0), ColRefs(0), JoinInner, nil, 0))
		if err != nil {
			t.Fatal(err)
		}
		ctx := NewCtx("", 0)
		j := NewVecHashJoin(ctx,
			ToVec(RowOnly(NewSource(lineSch, d.Lineitem)), 512),
			ToVec(RowOnly(NewSource(ordSch, d.Orders)), 512),
			ColRefs(0), ColRefs(0), JoinInner, nil, 0)
		if _, ok := j.(*VecHashJoin); !ok {
			t.Fatal("plain column keys must run on the native vector join")
		}
		got, err := Collect(FromVec(j))
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(d.Lineitem) {
			t.Fatalf("join rows = %d, want %d", len(want), len(d.Lineitem))
		}
		assertSameRows(t, got, want)
	})

	t.Run("string-keys", func(t *testing.T) {
		flagSch := types.Schema{Cols: []types.Column{
			{Name: "flag", Kind: types.KindString},
			{Name: "tag", Kind: types.KindInt},
		}}
		flags := []types.Row{
			{types.NewString("R"), types.NewInt(1)},
			{types.NewString("A"), types.NewInt(2)},
			{types.NewString("N"), types.NewInt(3)},
		}
		probeRows := nullify(d.Lineitem[:20000], 4, 8) // null string keys must not match
		want, err := Collect(NewHashJoin(NewCtx("", 0),
			RowOnly(NewSource(lineSch, probeRows)), RowOnly(NewSource(flagSch, flags)),
			ColRefs(8), ColRefs(0), JoinInner, nil, 0))
		if err != nil {
			t.Fatal(err)
		}
		ctx := NewCtx("", 0)
		j := NewVecHashJoin(ctx,
			ToVec(RowOnly(NewSource(lineSch, probeRows)), 512),
			ToVec(RowOnly(NewSource(flagSch, flags)), 512),
			ColRefs(8), ColRefs(0), JoinInner, nil, 0)
		got, err := Collect(FromVec(j))
		if err != nil {
			t.Fatal(err)
		}
		assertSameRows(t, got, want)
	})

	t.Run("semi-anti", func(t *testing.T) {
		for _, jt := range []JoinType{JoinSemi, JoinAnti} {
			want, err := Collect(NewHashJoin(NewCtx("", 0),
				RowOnly(NewSource(ordSch, d.Orders)), RowOnly(NewSource(lineSch, d.Lineitem[:9000])),
				ColRefs(0), ColRefs(0), jt, nil, 0))
			if err != nil {
				t.Fatal(err)
			}
			j := NewVecHashJoin(NewCtx("", 0),
				ToVec(RowOnly(NewSource(ordSch, d.Orders)), 512),
				ToVec(RowOnly(NewSource(lineSch, d.Lineitem[:9000])), 512),
				ColRefs(0), ColRefs(0), jt, nil, 0)
			got, err := Collect(FromVec(j))
			if err != nil {
				t.Fatal(err)
			}
			assertSameRows(t, got, want)
		}
	})
}

// TestVecJoinOverflowSpillParity overflows the vector join's build budget,
// forcing the graceful handoff to the spilling grace join, and demands
// parity with the row path.
func TestVecJoinOverflowSpillParity(t *testing.T) {
	d := tpch.Generate(0.01, 42)
	lineSch := schemaFor(d.Lineitem[0])
	ordSch := schemaFor(d.Orders[0])
	want, err := Collect(NewHashJoin(NewCtx(t.TempDir(), 2000),
		RowOnly(NewSource(lineSch, d.Lineitem)), RowOnly(NewSource(ordSch, d.Orders)),
		ColRefs(0), ColRefs(0), JoinInner, nil, 2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(t.TempDir(), 2000) // orders(15000) overflows the budget
	j := NewVecHashJoin(ctx,
		ToVec(RowOnly(NewSource(lineSch, d.Lineitem)), 512),
		ToVec(RowOnly(NewSource(ordSch, d.Orders)), 512),
		ColRefs(0), ColRefs(0), JoinInner, nil, 2)
	got, err := Collect(FromVec(j))
	if err != nil {
		t.Fatal(err)
	}
	if ctx.SpillFiles.Load() == 0 {
		t.Fatalf("overflowed vector join must spill (files=%d)", ctx.SpillFiles.Load())
	}
	assertSameRows(t, got, want)
}

// TestSendAllVecHonorsWireBatchRows pins the Ctx.BatchRows knob to the
// vector wire: a vec-native input is chunked into ceil(rows/batch) data
// messages plus one EOF, independent of the producer's slab size. Strings
// and NULLs ride along to exercise the columnar wire codec end to end.
func TestSendAllVecHonorsWireBatchRows(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	sch := types.Schema{Cols: []types.Column{
		{Name: "k", Kind: types.KindInt},
		{Name: "s", Kind: types.KindString},
	}}
	var rows []types.Row
	for i := 0; i < 17; i++ {
		r := types.Row{types.NewInt(int64(i)), types.NewString([]string{"x", "y", "z"}[i%3])}
		if i%4 == 0 {
			r[1] = types.Null
		}
		rows = append(rows, r)
	}
	fabric := network.NewFabric([]int{0, 1}, 64)
	defer fabric.CloseAll()
	ctx := NewCtx("", 0)
	ctx.BatchRows = 5
	// Producer slabs are far larger than the wire batch: chunking must come
	// from the knob, not from whatever the producer happens to emit.
	in := FromVec(ToVec(RowOnly(NewSource(sch, rows)), 1024))
	if _, ok := nativeVec(in); !ok {
		t.Fatal("test input must be vec-native to exercise the columnar wire path")
	}
	ep1, _ := fabric.Endpoint(1)
	if err := SendAll(ctx, ep1, 0, "vknob", in); err != nil {
		t.Fatal(err)
	}
	ep0, _ := fabric.Endpoint(0)
	got, err := Collect(NewRecv(ep0, "vknob", 1, sch))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("received %d rows, want %d", len(got), len(rows))
	}
	assertSameRows(t, got, rows)
	if n := fabric.Meter().TotalMessages(); n != 4+1 { // ceil(17/5)=4 data + EOF
		t.Errorf("wire messages = %d, want 5", n)
	}
}
