package exec

import (
	"sync"
	"testing"

	"repro/internal/network"
	"repro/internal/types"
)

// TestShuffleOverTCP runs a hierarchical shuffle over real TCP sockets —
// the deployment path of cmd/hrdbms-server, exercising framing, lazy
// dialing, and demultiplexing under the same exchange protocol the
// in-process fabric uses.
func TestShuffleOverTCP(t *testing.T) {
	const n = 4
	peers := map[int]string{}
	eps := make([]*network.TCPEndpoint, n)
	for i := 0; i < n; i++ {
		ep, err := network.NewTCPEndpoint(i, "127.0.0.1:0", peers)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
		peers[i] = ep.Addr()
	}
	ids := []int{0, 1, 2, 3}
	spec := ShuffleSpec{Channel: "tcp-shuffle", Nodes: ids, Nmax: 2, Hierarchical: true}
	sch := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindString},
	)

	results := make([][]types.Row, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var rows []types.Row
			for k := 0; k < 100; k++ {
				rows = append(rows, types.Row{
					types.NewInt(int64(i*100 + k)),
					types.NewString("payload"),
				})
			}
			sh, err := NewShuffle(nil, eps[i], spec, NewSource(sch, rows), ColRefs(0), types.Schema{})
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = Collect(sh)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	seen := map[int64]bool{}
	for node, rows := range results {
		for _, r := range rows {
			if seen[r[0].Int()] {
				t.Fatalf("row %d delivered twice", r[0].Int())
			}
			seen[r[0].Int()] = true
			want := int(types.HashRow(r, []int{0}) % uint64(n))
			if want != node {
				t.Fatalf("row %d on node %d, want %d", r[0].Int(), node, want)
			}
		}
	}
	if len(seen) != n*100 {
		t.Fatalf("saw %d rows, want %d", len(seen), n*100)
	}
}

// runMeteredShuffle drives the same 4-node hierarchical shuffle over an
// arbitrary set of endpoints and returns how many rows came out. The row
// placement and batching are deterministic, so the traffic a meter sees is
// identical regardless of transport.
func runMeteredShuffle(t *testing.T, eps []network.Endpoint, channel string) int {
	t.Helper()
	n := len(eps)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	spec := ShuffleSpec{Channel: channel, Nodes: ids, Nmax: 2, Hierarchical: true}
	sch := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindString},
	)
	results := make([][]types.Row, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var rows []types.Row
			for k := 0; k < 100; k++ {
				rows = append(rows, types.Row{
					types.NewInt(int64(i*100 + k)),
					types.NewString("payload"),
				})
			}
			sh, err := NewShuffle(nil, eps[i], spec, NewSource(sch, rows), ColRefs(0), types.Schema{})
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = Collect(sh)
		}(i)
	}
	wg.Wait()
	total := 0
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		total += len(results[i])
	}
	return total
}

// TestTCPMeterParityWithInproc is the regression test for TCP endpoints
// silently bypassing the Meter: RunMetrics.NetBytes/NetMessages/Connections
// read 0 on a TCP deployment even though the same query metered fine
// in-process. Both transports must now account identically for the same
// exchange.
func TestTCPMeterParityWithInproc(t *testing.T) {
	const n = 4
	fabric := network.NewFabric([]int{0, 1, 2, 3}, 1024)
	defer fabric.CloseAll()
	inEps := make([]network.Endpoint, n)
	for i := 0; i < n; i++ {
		ep, err := fabric.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		inEps[i] = ep
	}
	inRows := runMeteredShuffle(t, inEps, "q1.par")

	peers := map[int]string{}
	tcpMeter := network.NewMeter()
	tcpEps := make([]network.Endpoint, n)
	for i := 0; i < n; i++ {
		ep, err := network.NewTCPEndpoint(i, "127.0.0.1:0", peers)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		ep.SetMeter(tcpMeter)
		peers[i] = ep.Addr()
		tcpEps[i] = ep
	}
	tcpRows := runMeteredShuffle(t, tcpEps, "q1.par")

	if inRows != tcpRows || inRows != n*100 {
		t.Fatalf("rows: inproc=%d tcp=%d want %d", inRows, tcpRows, n*100)
	}
	im := fabric.Meter()
	if tcpMeter.TotalBytes() == 0 || tcpMeter.TotalMessages() == 0 {
		t.Fatal("TCP endpoints recorded nothing into the meter")
	}
	if tcpMeter.TotalBytes() != im.TotalBytes() {
		t.Errorf("bytes: tcp=%d inproc=%d", tcpMeter.TotalBytes(), im.TotalBytes())
	}
	if tcpMeter.TotalMessages() != im.TotalMessages() {
		t.Errorf("messages: tcp=%d inproc=%d", tcpMeter.TotalMessages(), im.TotalMessages())
	}
	if tcpMeter.Connections() != im.Connections() {
		t.Errorf("connections: tcp=%d inproc=%d", tcpMeter.Connections(), im.Connections())
	}
	if tcpMeter.MaxNodeDegree() != im.MaxNodeDegree() {
		t.Errorf("degree: tcp=%d inproc=%d", tcpMeter.MaxNodeDegree(), im.MaxNodeDegree())
	}
}

// TestTCPCompressionParityWithInproc runs the metered shuffle over TCP
// endpoints with LZ4 compression enabled: delivery and metering must stay
// byte-identical to the in-process fabric (the meter records raw payload
// sizes), while the wire itself carries fewer bytes than it would raw.
func TestTCPCompressionParityWithInproc(t *testing.T) {
	const n = 4
	fabric := network.NewFabric([]int{0, 1, 2, 3}, 1024)
	defer fabric.CloseAll()
	inEps := make([]network.Endpoint, n)
	for i := 0; i < n; i++ {
		ep, err := fabric.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		inEps[i] = ep
	}
	inRows := runMeteredShuffle(t, inEps, "q1.par")

	peers := map[int]string{}
	tcpMeter := network.NewMeter()
	tcpEps := make([]network.Endpoint, n)
	for i := 0; i < n; i++ {
		ep, err := network.NewTCPEndpoint(i, "127.0.0.1:0", peers)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		ep.SetMeter(tcpMeter)
		ep.EnableCompression()
		peers[i] = ep.Addr()
		tcpEps[i] = ep
	}
	tcpRows := runMeteredShuffle(t, tcpEps, "q1.par")

	if inRows != tcpRows || inRows != n*100 {
		t.Fatalf("rows: inproc=%d tcp=%d want %d", inRows, tcpRows, n*100)
	}
	im := fabric.Meter()
	if tcpMeter.TotalBytes() != im.TotalBytes() {
		t.Errorf("bytes: tcp=%d inproc=%d", tcpMeter.TotalBytes(), im.TotalBytes())
	}
	if tcpMeter.TotalMessages() != im.TotalMessages() {
		t.Errorf("messages: tcp=%d inproc=%d", tcpMeter.TotalMessages(), im.TotalMessages())
	}
	raw, wire := tcpMeter.CompressedBytes()
	if raw == 0 {
		t.Fatal("no compression accounting recorded")
	}
	if wire >= raw {
		t.Errorf("compression saved nothing: raw=%d wire=%d", raw, wire)
	}
}

// TestGatherOverTCP checks SendAll/Recv over sockets.
func TestGatherOverTCP(t *testing.T) {
	peers := map[int]string{}
	coord, err := network.NewTCPEndpoint(0, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	worker, err := network.NewTCPEndpoint(1, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	peers[0] = coord.Addr()
	peers[1] = worker.Addr()

	sch := types.NewSchema(types.Column{Name: "x", Kind: types.KindInt})
	go func() {
		var rows []types.Row
		for i := int64(0); i < 500; i++ {
			rows = append(rows, types.Row{types.NewInt(i)})
		}
		_ = SendAll(nil, worker, 0, "tcp-gather", NewSource(sch, rows))
	}()
	got, err := Collect(NewRecv(coord, "tcp-gather", 1, sch))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("gathered %d rows", len(got))
	}
}
