package exec

import (
	"testing"

	"repro/internal/types"
)

func TestMaterializeInMemory(t *testing.T) {
	src := NewSource(intSchema("a"), intRows([]int64{1}, []int64{2}, []int64{3}))
	m := NewMaterialize(nil, src, false)
	rows, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[2][0].Int() != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if m.BytesBuffered <= 0 {
		t.Error("bytes buffered not accounted")
	}
}

func TestMaterializeToDisk(t *testing.T) {
	ctx := NewCtx(t.TempDir(), 0)
	var rows []types.Row
	for i := int64(0); i < 1000; i++ {
		rows = append(rows, types.Row{types.NewInt(i), types.NewString("payload")})
	}
	src := NewSource(intSchema("a", "b"), rows)
	m := NewMaterialize(ctx, src, true)
	out, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1000 {
		t.Fatalf("rows = %d", len(out))
	}
	for i, r := range out {
		if r[0].Int() != int64(i) {
			t.Fatalf("row %d out of order: %v", i, r)
		}
	}
	if ctx.SpillFiles.Load() == 0 {
		t.Error("disk materialization did not spill")
	}
	if ctx.SpillBytes.Load() == 0 {
		t.Error("spill bytes not metered")
	}
}

func TestMaterializeIsBlocking(t *testing.T) {
	// The source must be fully drained before the first Next returns.
	drained := false
	src := &drainTracker{Source: NewSource(intSchema("a"), intRows([]int64{1}, []int64{2})), done: &drained}
	m := NewMaterialize(nil, src, false)
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	r, ok, err := m.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if !drained {
		t.Error("first row returned before input fully drained — not blocking")
	}
	_ = r
}

type drainTracker struct {
	*Source
	done *bool
}

func (d *drainTracker) Next() (types.Row, bool, error) {
	r, ok, err := d.Source.Next()
	if !ok {
		*d.done = true
	}
	return r, ok, err
}

func TestMergeAggSchemaValidated(t *testing.T) {
	// Merge mode with a wrong-arity input must fail loudly, not corrupt.
	src := NewSource(intSchema("g", "x"), intRows([]int64{1, 2}))
	agg := NewHashAggregate(nil, src, ColRefs(0), []AggSpec{{Kind: AggSum, Name: "s"}}, AggFinal)
	if _, err := Collect(agg); err == nil {
		t.Error("merge aggregate over non-state input should error")
	}
}
