package exec

import (
	"testing"

	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/types"
)

func TestTracedOperatorCounts(t *testing.T) {
	sch := types.NewSchema(types.Column{Name: "x", Kind: types.KindInt})
	rows := []types.Row{{types.NewInt(1)}, {types.NewInt(2)}, {types.NewInt(3)}}
	tr := obs.NewQueryTrace(1, "")
	sp := tr.StartSpan("Source", 0)
	op := NewTraced(NewSource(sch, rows), sp)
	got, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("collected %d rows", len(got))
	}
	snap := tr.Spans()[0]
	if snap.RowsOut != 3 {
		t.Errorf("span rows_out = %d, want 3", snap.RowsOut)
	}
	if snap.WallNS <= 0 {
		t.Errorf("span wall = %d, want > 0", snap.WallNS)
	}
	// Nil span: no wrapper at all (the disabled fast path).
	plain := NewTraced(NewSource(sch, rows), nil)
	if _, ok := plain.(*Traced); ok {
		t.Fatal("nil span must not allocate a wrapper")
	}
	if Unwrap(op) == op || Unwrap(plain) != plain {
		t.Fatal("Unwrap must see through exactly one Traced layer")
	}
}

func TestCountingEndpoint(t *testing.T) {
	f := network.NewFabric([]int{0, 1}, 16)
	defer f.CloseAll()
	e0, _ := f.Endpoint(0)
	tr := obs.NewQueryTrace(1, "")
	sp := tr.StartSpan("Send", 0)
	ep := NewCountingEndpoint(e0, sp)
	if err := ep.Send(1, 1, "ch", make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(0, 0, "ch", make([]byte, 99)); err != nil { // self: loopback, uncounted
		t.Fatal(err)
	}
	snap := tr.Spans()[0]
	if snap.NetBytes != 32 || snap.NetMsgs != 1 {
		t.Errorf("span net = %dB/%d msgs, want 32/1", snap.NetBytes, snap.NetMsgs)
	}
	if got := f.Meter().TotalBytes(); got != 32 {
		t.Errorf("meter bytes = %d, want 32 (same loopback rule)", got)
	}
	if NewCountingEndpoint(e0, nil) != e0 {
		t.Fatal("nil span must return the endpoint unwrapped")
	}
}
