package exec

import (
	"repro/internal/types"
)

// Materialize is a blocking buffer: Open fully drains the input — to a
// spill file when a context with a budget is supplied, else to memory —
// before the first row is served. It models the materialization points of
// the baseline systems (MapReduce's blocking shuffle, Hive/Spark writing
// shuffle data to disk); HRDBMS's own plans never insert it.
type Materialize struct {
	In     Operator
	ToDisk bool
	ctx    *Ctx

	mem      []types.Row
	reader   *spillReader
	prepared bool
	pos      int

	// BytesBuffered reports how much data was materialized (perf model).
	BytesBuffered int64
}

// NewMaterialize builds the blocking buffer.
func NewMaterialize(ctx *Ctx, in Operator, toDisk bool) *Materialize {
	return &Materialize{In: in, ToDisk: toDisk, ctx: ctx}
}

// Schema implements Operator.
func (m *Materialize) Schema() types.Schema { return m.In.Schema() }

// Open implements Operator.
func (m *Materialize) Open() error {
	m.mem, m.reader, m.prepared, m.pos, m.BytesBuffered = nil, nil, false, 0, 0
	return m.In.Open()
}

func (m *Materialize) prepare() error {
	var w *spillWriter
	if m.ToDisk && m.ctx != nil && m.ctx.TempDir != "" {
		var err error
		w, err = newSpillWriter(m.ctx, "mat-*")
		if err != nil {
			return err
		}
	}
	for {
		r, ok, err := m.In.Next()
		if err != nil {
			if w != nil {
				w.abort()
			}
			return err
		}
		if !ok {
			break
		}
		sz := int64(types.RowEncodedSize(r))
		m.BytesBuffered += sz
		if w == nil {
			if m.ctx != nil {
				m.ctx.addState(sz)
			}
		}
		if w != nil {
			if err := w.write(r); err != nil {
				w.abort()
				return err
			}
		} else {
			m.mem = append(m.mem, r)
		}
	}
	if w != nil {
		rd, err := w.finish()
		if err != nil {
			return err
		}
		m.reader = rd
	}
	m.prepared = true
	return nil
}

// Next implements Operator.
func (m *Materialize) Next() (types.Row, bool, error) {
	if !m.prepared {
		if err := m.prepare(); err != nil {
			return nil, false, err
		}
	}
	if m.reader != nil {
		return m.reader.next()
	}
	if m.pos >= len(m.mem) {
		return nil, false, nil
	}
	r := m.mem[m.pos]
	m.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator for the in-memory buffer, serving
// retired windows of the buffered rows; the spill-file path stays
// row-at-a-time (each read allocates anyway).
func (m *Materialize) NextBatch() ([]types.Row, bool, error) {
	if !m.prepared {
		if err := m.prepare(); err != nil {
			return nil, false, err
		}
	}
	if m.reader != nil {
		var slab []types.Row
		for len(slab) < DefaultBatchRows {
			r, ok, err := m.reader.next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			slab = append(slab, r)
		}
		if len(slab) == 0 {
			return nil, false, nil
		}
		return slab, true, nil
	}
	if m.pos >= len(m.mem) {
		return nil, false, nil
	}
	end := m.pos + m.ctx.batchRows()
	if end > len(m.mem) {
		end = len(m.mem)
	}
	out := m.mem[m.pos:end]
	m.pos = end
	return out, true, nil
}

// Close implements Operator.
func (m *Materialize) Close() error {
	if m.reader != nil {
		m.reader.close()
		m.reader = nil
	}
	return m.In.Close()
}
