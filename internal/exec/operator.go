// Package exec implements HRDBMS's execution engine (Section IV): pull-based
// pipelined relational operators with exchange operators encapsulating
// intra-operator parallelism and the network edges between nodes. Operators
// run fully in memory once data is read from disk and spill to temporary
// files only when their input exceeds the memory budget, as the paper
// prescribes.
package exec

import (
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/types"
)

// Operator is a Volcano-style iterator.
type Operator interface {
	// Schema describes the rows Next returns.
	Schema() types.Schema
	// Open prepares the operator (and its inputs) for iteration.
	Open() error
	// Next returns the next row; ok=false signals exhaustion.
	Next() (row types.Row, ok bool, err error)
	// Close releases resources. Close is idempotent.
	Close() error
}

// Counters is the metering block shared by every Ctx derived from one
// node context. It lives behind a pointer so a per-query child Ctx (see
// Child) still charges the node-level counters the cluster gauges and
// runMetered diffs read, and so Ctx itself stays shallow-copyable.
type Counters struct {
	// RowsProcessed, SpillBytes, SpillFiles meter work for the
	// performance model.
	RowsProcessed atomic.Int64
	SpillBytes    atomic.Int64
	SpillFiles    atomic.Int64
	// StateBytes accumulates the bytes held by stateful operators (hash
	// join build sides, aggregation tables, sort buffers) — the memory
	// working set the paper's OOM discussion is about.
	StateBytes atomic.Int64
	// DecodeTypedPages/DecodeBoxedPages count column pages decoded by the
	// typed batch decoders vs pages that fell back to the boxed
	// DecodeInto path (kind mismatch or untyped layout). A nonzero boxed
	// count on an OLAP workload means a scan is silently paying the
	// boxing tax.
	DecodeTypedPages atomic.Int64
	DecodeBoxedPages atomic.Int64
}

// Ctx carries per-query execution state shared by the operators of one
// plan fragment on one node.
type Ctx struct {
	// TempDir receives spill files. Empty disables spilling (operators
	// fail instead of spilling).
	TempDir string
	// MemRows is the per-operator in-memory row budget before spilling.
	// Zero means unlimited.
	MemRows int
	// BatchRows sizes the slabs the vectorized path moves between
	// operators and, for exchanges, the rows per wire message. Zero keeps
	// the defaults (DefaultBatchRows for operator slabs,
	// DefaultWireBatchRows for exchange messages).
	BatchRows int
	// GraceFanout is the number of spill partitions a grace hash join
	// fans out to; zero selects DefaultGraceFanout.
	GraceFanout int
	// ScanFeedDepth is the scan feed's slab channel depth — how many slabs
	// a scan thread may run ahead of its consumer; zero selects
	// DefaultScanFeedDepth.
	ScanFeedDepth int
	// MorselPages is the page-range granularity of parallel fragment
	// scans; zero selects storage.DefaultMorselPages.
	MorselPages int

	// Counters meters work into the node-level block shared with every
	// sibling Ctx of the same node (see Child).
	*Counters

	// parallelBudget, when set, bounds the node's total intra-operator
	// parallelism: operators acquire worker tokens and degrade gracefully
	// to fewer threads when the node is busy (the paper's worker-local
	// resource management: "worker nodes manage memory and degree of
	// parallelism individually").
	parallelBudget chan struct{}

	// cancel, when set, aborts the fragment between batches: scan feeds
	// stop producing, exchanges stop sending (but still EOF their peers),
	// and pull loops surface the cause. Nil means uncancellable.
	cancel *Cancel
}

// Child derives a per-query context from a node context: tuning knobs are
// copied (callers may then override per session), while the metering
// counters and the node's parallel budget stay shared, so concurrent
// queries on one node still compete for the same worker tokens and show up
// in the same gauges. The cancel handle is private to the child.
func (c *Ctx) Child(cancel *Cancel) *Ctx {
	child := *c
	child.cancel = cancel
	return &child
}

// Cancel returns the context's cancellation handle (nil if none).
func (c *Ctx) Cancel() *Cancel {
	if c == nil {
		return nil
	}
	return c.cancel
}

// canceled reports whether the fragment should abort, with the cause.
func (c *Ctx) canceled() error {
	if c == nil || c.cancel == nil {
		return nil
	}
	return c.cancel.Err()
}

// cancelDone exposes the done channel for select loops; nil-safe (a nil
// channel never selects ready).
func (c *Ctx) cancelDone() <-chan struct{} {
	if c == nil {
		return nil
	}
	return c.cancel.Done()
}

// SetParallelBudget installs a node-wide cap on extra operator threads.
func (c *Ctx) SetParallelBudget(tokens int) {
	if tokens < 0 {
		tokens = 0
	}
	c.parallelBudget = make(chan struct{}, tokens)
	for i := 0; i < tokens; i++ {
		c.parallelBudget <- struct{}{}
	}
}

// AcquireWorkers grants between 1 and want degrees of parallelism without
// blocking: the first degree is always free; extra degrees come from the
// node budget if available right now.
func (c *Ctx) AcquireWorkers(want int) int {
	if want < 1 {
		want = 1
	}
	granted := 1
	if c == nil || c.parallelBudget == nil {
		return want
	}
	for granted < want {
		select {
		case <-c.parallelBudget:
			granted++
		default:
			return granted
		}
	}
	return granted
}

// ReleaseWorkers returns extra degrees to the node budget.
func (c *Ctx) ReleaseWorkers(granted int) {
	if c == nil || c.parallelBudget == nil {
		return
	}
	for i := 1; i < granted; i++ {
		select {
		case c.parallelBudget <- struct{}{}:
		default:
			return
		}
	}
}

// batchRows resolves the operator slab size; nil-safe.
func (c *Ctx) batchRows() int {
	if c == nil || c.BatchRows <= 0 {
		return DefaultBatchRows
	}
	return c.BatchRows
}

// wireBatchRows resolves the rows per exchange message; nil-safe. The
// wire default is smaller than the slab default so a shuffle can keep a
// buffer per destination without ballooning memory, but an explicit
// Ctx.BatchRows overrides both together (satisfying "one knob").
func (c *Ctx) wireBatchRows() int {
	if c == nil || c.BatchRows <= 0 {
		return DefaultWireBatchRows
	}
	return c.BatchRows
}

// DefaultGraceFanout is the grace hash join's spill partition count.
const DefaultGraceFanout = 16

// DefaultScanFeedDepth is how many slabs a scan thread may buffer ahead
// of its consumer.
const DefaultScanFeedDepth = 4

// graceFanout resolves the grace join partition fanout; nil-safe.
func (c *Ctx) graceFanout() int {
	if c == nil || c.GraceFanout <= 0 {
		return DefaultGraceFanout
	}
	return c.GraceFanout
}

// scanFeedDepth resolves the scan feed channel depth; nil-safe.
func (c *Ctx) scanFeedDepth() int {
	if c == nil || c.ScanFeedDepth <= 0 {
		return DefaultScanFeedDepth
	}
	return c.ScanFeedDepth
}

// morselPages resolves the parallel-scan morsel granularity; nil-safe.
// Zero defers to the storage default.
func (c *Ctx) morselPages() int {
	if c == nil {
		return 0
	}
	return c.MorselPages
}

// addState records operator state bytes when a context is present.
func (c *Ctx) addState(n int64) {
	if c != nil {
		c.StateBytes.Add(n)
	}
}

// NewCtx builds a context with a temp dir and row budget.
func NewCtx(tempDir string, memRows int) *Ctx {
	return &Ctx{TempDir: tempDir, MemRows: memRows, Counters: &Counters{}}
}

func (c *Ctx) tempFile(pattern string) (*os.File, error) {
	if c.TempDir == "" {
		return nil, fmt.Errorf("exec: operator needs to spill but no temp dir configured")
	}
	f, err := os.CreateTemp(c.TempDir, pattern)
	if err != nil {
		return nil, fmt.Errorf("exec: create spill file: %w", err)
	}
	c.SpillFiles.Add(1)
	return f, nil
}

// Source yields rows from a slice; the leaf operator for tests, constant
// relations, and rebuffered intermediates.
type Source struct {
	Sch  types.Schema
	Rows []types.Row
	pos  int
	slab []types.Row
}

// NewSource builds a source operator.
func NewSource(s types.Schema, rows []types.Row) *Source {
	return &Source{Sch: s, Rows: rows}
}

// Schema implements Operator.
func (s *Source) Schema() types.Schema { return s.Sch }

// Open implements Operator.
func (s *Source) Open() error { s.pos = 0; return nil }

// Next implements Operator.
func (s *Source) Next() (types.Row, bool, error) {
	if s.pos >= len(s.Rows) {
		return nil, false, nil
	}
	r := s.Rows[s.pos]
	s.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator. Rows are copied into a reusable
// slab rather than sub-sliced out of s.Rows: the batch contract lets the
// consumer compact the slab in place, and that must not disturb the
// authoritative backing slice.
func (s *Source) NextBatch() ([]types.Row, bool, error) {
	if s.pos >= len(s.Rows) {
		return nil, false, nil
	}
	n := DefaultBatchRows
	if rest := len(s.Rows) - s.pos; rest < n {
		n = rest
	}
	if cap(s.slab) < n {
		s.slab = make([]types.Row, n)
	}
	out := s.slab[:n]
	copy(out, s.Rows[s.pos:s.pos+n])
	s.pos += n
	return out, true, nil
}

// Close implements Operator.
func (s *Source) Close() error { return nil }

// Filter passes rows whose predicate evaluates to (non-null) true.
type Filter struct {
	In   Operator
	Pred expr.Expr
	ctx  *Ctx
	bin  BatchOperator
}

// NewFilter builds a filter; the predicate must already be bound to the
// input schema.
func NewFilter(ctx *Ctx, in Operator, pred expr.Expr) *Filter {
	return &Filter{In: in, Pred: pred, ctx: ctx}
}

// Schema implements Operator.
func (f *Filter) Schema() types.Schema { return f.In.Schema() }

// Open implements Operator.
func (f *Filter) Open() error {
	f.bin = nil
	return f.In.Open()
}

// Next implements Operator.
func (f *Filter) Next() (types.Row, bool, error) {
	for {
		r, ok, err := f.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.ctx != nil {
			f.ctx.RowsProcessed.Add(1)
		}
		keep, err := expr.EvalBool(f.Pred, r)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return r, true, nil
		}
	}
}

// NextBatch implements BatchOperator: evaluate the predicate over the
// input slab and compact survivors in place (the slab belongs to us per
// the batch ownership contract).
func (f *Filter) NextBatch() ([]types.Row, bool, error) {
	if f.bin == nil {
		f.bin = ToBatch(f.In, f.ctx.batchRows())
	}
	for {
		b, ok, err := f.bin.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.ctx != nil {
			f.ctx.RowsProcessed.Add(int64(len(b)))
		}
		out := b[:0]
		for _, r := range b {
			keep, err := expr.EvalBool(f.Pred, r)
			if err != nil {
				return nil, false, err
			}
			if keep {
				out = append(out, r)
			}
		}
		if len(out) > 0 {
			return out, true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.In.Close() }

// Project computes output expressions per row.
type Project struct {
	In    Operator
	Exprs []expr.Expr
	Out   types.Schema
	ctx   *Ctx
	bin   BatchOperator
	slab  []types.Row
}

// NewProject builds a projection; exprs must be bound to the input schema
// and names gives the output column names.
func NewProject(ctx *Ctx, in Operator, exprs []expr.Expr, names []string) *Project {
	cols := make([]types.Column, len(exprs))
	for i, e := range exprs {
		cols[i] = types.Column{Name: names[i], Kind: expr.KindOf(e, in.Schema())}
	}
	return &Project{In: in, Exprs: exprs, Out: types.Schema{Cols: cols}, ctx: ctx}
}

// Schema implements Operator.
func (p *Project) Schema() types.Schema { return p.Out }

// Open implements Operator.
func (p *Project) Open() error {
	p.bin = nil
	return p.In.Open()
}

// Next implements Operator.
func (p *Project) Next() (types.Row, bool, error) {
	r, ok, err := p.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	if p.ctx != nil {
		p.ctx.RowsProcessed.Add(1)
	}
	out := make(types.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(r)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

// NextBatch implements BatchOperator: evaluate the output expressions
// over the input slab into a reusable output slab. The projected rows
// themselves are freshly allocated (row values may be retained by the
// consumer); only the slice holding them is reused.
func (p *Project) NextBatch() ([]types.Row, bool, error) {
	if p.bin == nil {
		p.bin = ToBatch(p.In, p.ctx.batchRows())
	}
	b, ok, err := p.bin.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	if p.ctx != nil {
		p.ctx.RowsProcessed.Add(int64(len(b)))
	}
	if cap(p.slab) < len(b) {
		p.slab = make([]types.Row, len(b))
	}
	out := p.slab[:len(b)]
	// One flat value allocation backs every projected row of the slab
	// (instead of one allocation per row). A consumer that retains a row
	// pins its slab's values, which is fine for the retainers we have:
	// they keep either everything (sort, build sides) or a bounded few
	// (top-k), never an unbounded selective subset.
	k := len(p.Exprs)
	vals := make([]types.Value, len(b)*k)
	for i, r := range b {
		row := types.Row(vals[i*k : (i+1)*k : (i+1)*k])
		for j, e := range p.Exprs {
			v, err := e.Eval(r)
			if err != nil {
				return nil, false, err
			}
			row[j] = v
		}
		out[i] = row
	}
	return out, true, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.In.Close() }

// Limit stops after n rows (with optional offset).
type Limit struct {
	In     Operator
	N      int64
	Offset int64
	seen   int64
	done   int64
}

// NewLimit builds a LIMIT operator.
func NewLimit(in Operator, n, offset int64) *Limit {
	return &Limit{In: in, N: n, Offset: offset}
}

// Schema implements Operator.
func (l *Limit) Schema() types.Schema { return l.In.Schema() }

// Open implements Operator.
func (l *Limit) Open() error { l.seen, l.done = 0, 0; return l.In.Open() }

// Next implements Operator.
func (l *Limit) Next() (types.Row, bool, error) {
	for {
		if l.done >= l.N {
			return nil, false, nil
		}
		r, ok, err := l.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		l.seen++
		if l.seen <= l.Offset {
			continue
		}
		l.done++
		return r, true, nil
	}
}

// Close implements Operator.
func (l *Limit) Close() error { return l.In.Close() }

// Union concatenates inputs (UNION ALL and merging fragment scans).
type Union struct {
	Ins []Operator
	cur int
}

// NewUnion builds a union of same-schema inputs.
func NewUnion(ins ...Operator) *Union { return &Union{Ins: ins} }

// Schema implements Operator.
func (u *Union) Schema() types.Schema {
	if len(u.Ins) == 0 {
		return types.Schema{}
	}
	return u.Ins[0].Schema()
}

// Open implements Operator.
func (u *Union) Open() error {
	u.cur = 0
	for _, in := range u.Ins {
		if err := in.Open(); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator.
func (u *Union) Next() (types.Row, bool, error) {
	for u.cur < len(u.Ins) {
		r, ok, err := u.Ins[u.cur].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return r, true, nil
		}
		u.cur++
	}
	return nil, false, nil
}

// Close implements Operator.
func (u *Union) Close() error {
	var firstErr error
	for _, in := range u.Ins {
		if err := in.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Distinct removes duplicate rows by hashing the full row.
type Distinct struct {
	In   Operator
	seen map[string]bool
}

// NewDistinct builds a DISTINCT operator.
func NewDistinct(in Operator) *Distinct { return &Distinct{In: in} }

// Schema implements Operator.
func (d *Distinct) Schema() types.Schema { return d.In.Schema() }

// Open implements Operator.
func (d *Distinct) Open() error {
	d.seen = map[string]bool{}
	return d.In.Open()
}

// Next implements Operator.
func (d *Distinct) Next() (types.Row, bool, error) {
	for {
		r, ok, err := d.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key := string(types.AppendRow(nil, r))
		if d.seen[key] {
			continue
		}
		d.seen[key] = true
		return r, true, nil
	}
}

// Close implements Operator.
func (d *Distinct) Close() error { return d.In.Close() }

// Collect drains an operator into a slice (Open/Next/Close), using the
// batch path when the operator supports it.
func Collect(op Operator) ([]types.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []types.Row
	if b, ok := nativeBatch(op); ok {
		for {
			batch, ok, err := b.NextBatch()
			if err != nil {
				return out, err
			}
			if !ok {
				return out, nil
			}
			out = append(out, batch...)
		}
	}
	for {
		r, ok, err := op.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}
