package exec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/topology"
	"repro/internal/types"
	"repro/internal/vec"
)

// Exchange operators move rows between nodes. The shuffle comes in two
// flavors (Section IV): DIRECT, where every sender opens a connection to
// every receiver (the MPP pattern whose O(n) per-node connection count the
// paper identifies as a scalability bottleneck), and HIERARCHICAL, where
// messages are routed over the binomial-graph ring topology so no node
// talks to more than Nmax neighbors, with intermediate nodes acting as
// forwarding hubs. Both flavors are non-blocking: rows stream in batches
// and are never sorted or materialized to disk in transit (the paper's
// non-blocking shuffle).

// Batch wire format: [1 type][2 origin ring pos][rows...].
const (
	msgData byte = 0
	msgEOF  byte = 1
)

// errShuffleClosed aborts a shuffle's send loop after Close; it never
// reaches callers (an abandoned stream has no consumer to report to).
var errShuffleClosed = errors.New("exec: shuffle closed")

// exchangeHeader appends the 3-byte exchange header. The receive loop and
// hub forwarding read Payload[0] (type) and Payload[1:3] (origin) directly,
// so the header layout is load-bearing independent of the row encoding.
func exchangeHeader(buf []byte, msgType byte, origin int) []byte {
	buf = append(buf, msgType)
	var o [2]byte
	binary.LittleEndian.PutUint16(o[:], uint16(origin))
	return append(buf, o[:]...)
}

// encodeBatch serializes rows column-wise (typed arrays, null bitmaps,
// per-message string dictionaries — see vec wire format) behind the
// exchange header. The LZ4 framing in the network layer composes on top.
func encodeBatch(msgType byte, origin int, rows []types.Row) []byte {
	buf := exchangeHeader(make([]byte, 0, 64), msgType, origin)
	return vec.EncodeRows(buf, rows)
}

func decodeBatch(b []byte) (msgType byte, origin int, rows []types.Row, err error) {
	if len(b) < 3 {
		return 0, 0, nil, fmt.Errorf("exec: short exchange message")
	}
	msgType = b[0]
	origin = int(binary.LittleEndian.Uint16(b[1:]))
	rows, err = vec.DecodeRows(b[3:])
	if err != nil {
		return 0, 0, nil, err
	}
	return msgType, origin, rows, nil
}

// ShuffleSpec describes one shuffle instance shared by all participating
// nodes of a query plan.
type ShuffleSpec struct {
	Channel      string // unique per (query, exchange) pair
	Nodes        []int  // participating node IDs (all send and all receive)
	Nmax         int    // neighbor limit; 0 means direct shuffle
	Hierarchical bool
	// Broadcast replicates instead of partitioning: every input row goes
	// to every participating node (keys are ignored). The EOF protocol,
	// Nmax-bounded forwarding, and quiescence tracking are identical to a
	// hash shuffle — only the routing differs. Used when the optimizer
	// decides replicating a small build side beats repartitioning a large
	// probe side.
	Broadcast bool
}

// ring builds the routing ring over positions 0..len(Nodes)-1.
func (s ShuffleSpec) ring() (topology.Ring, error) {
	nmax := s.Nmax
	if nmax <= 0 {
		nmax = len(s.Nodes)
	}
	return topology.NewRing(len(s.Nodes), nmax)
}

// position returns the ring position of a node ID.
func (s ShuffleSpec) position(nodeID int) int {
	for i, id := range s.Nodes {
		if id == nodeID {
			return i
		}
	}
	return -1
}

// Shuffle is one node's participation in a shuffle: it sends the local
// input partitioned by key hash and yields the rows whose hash maps to this
// node. Use NewShuffle on every participating node with the same spec, then
// treat it as the local input of the downstream operator.
type Shuffle struct {
	Spec    ShuffleSpec
	In      Operator    // local input (may be nil on receive-only nodes)
	Keys    []expr.Expr // partition key expressions over the input
	ctx     *Ctx
	ep      network.Endpoint
	sch     types.Schema
	ring    topology.Ring
	selfPos int

	// OnLoops, when set, brackets the shuffle's background loops for
	// query-level quiescence tracking (the cluster releases a query's
	// fabric mailboxes only after every loop reading them has exited):
	// Add(1) when Open starts the loops, Done when the receive loop — the
	// last reader of this node's mailbox — exits. A *sync.WaitGroup
	// satisfies it.
	OnLoops interface {
		Add(delta int)
		Done()
	}

	batches   chan []types.Row
	errCh     chan error
	done      chan struct{} // closed by Close; unblocks every channel send
	closeOnce *sync.Once
	cur       []types.Row
	pos       int
}

// NewShuffle builds the per-node shuffle operator. ctx sizes the wire
// batches and may be nil (defaults apply); sch must be provided when in is
// nil.
func NewShuffle(ctx *Ctx, ep network.Endpoint, spec ShuffleSpec, in Operator, keys []expr.Expr, sch types.Schema) (*Shuffle, error) {
	if in != nil {
		sch = in.Schema()
	}
	ring, err := spec.ring()
	if err != nil {
		return nil, err
	}
	pos := spec.position(ep.NodeID())
	if pos < 0 {
		return nil, fmt.Errorf("exec: node %d not in shuffle spec", ep.NodeID())
	}
	return &Shuffle{Spec: spec, In: in, Keys: keys, ctx: ctx, ep: ep, sch: sch, ring: ring, selfPos: pos}, nil
}

// Schema implements Operator.
func (s *Shuffle) Schema() types.Schema { return s.sch }

// Open implements Operator.
func (s *Shuffle) Open() error {
	if s.In != nil {
		if err := s.In.Open(); err != nil {
			return err
		}
	}
	s.batches = make(chan []types.Row, 16)
	s.errCh = make(chan error, 2)
	s.done = make(chan struct{})
	s.closeOnce = new(sync.Once)
	s.cur, s.pos = nil, 0
	// Start the send/receive/forward loops immediately: a shuffle is a
	// cluster-wide rendezvous, and peers block until every participant's
	// loops are live, so lazy start (on first Next) can deadlock plans
	// that drain another stream before this one.
	s.start()
	return nil
}

// transitPairs computes the (sender, dest) pairs whose route passes through
// this node (delivery or forwarding), which is the exact set of EOF markers
// the receive loop must observe before terminating.
func (s *Shuffle) transitPairs() map[[2]int]bool {
	pairs := map[[2]int]bool{}
	n := len(s.Spec.Nodes)
	for src := 0; src < n; src++ {
		if src == s.selfPos {
			continue // own sends leave directly, never re-enter
		}
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			if !s.Spec.Hierarchical {
				if dst == s.selfPos {
					pairs[[2]int{src, dst}] = true
				}
				continue
			}
			for _, hop := range s.ring.Route(src, dst) {
				if hop == s.selfPos {
					pairs[[2]int{src, dst}] = true
					break
				}
			}
		}
	}
	return pairs
}

// send routes a payload toward a destination ring position.
func (s *Shuffle) send(destPos int, payload []byte) error {
	to := destPos
	if s.Spec.Hierarchical && destPos != s.selfPos {
		to = s.ring.NextHop(s.selfPos, destPos)
	}
	return s.ep.Send(s.Spec.Nodes[to], s.Spec.Nodes[destPos], s.Spec.Channel, payload)
}

// start launches the sender and receiver loops.
func (s *Shuffle) start() {
	if s.OnLoops != nil {
		s.OnLoops.Add(1)
	}
	// Forwarding queue: the receive loop must never block on a network
	// send, or two hubs with full mailboxes could deadlock each other. The
	// queue is unbounded; a dedicated goroutine drains it.
	fq := newForwardQueue()
	go func() {
		for {
			item, ok := fq.pop()
			if !ok {
				return
			}
			if err := s.ep.Send(item.to, item.dest, s.Spec.Channel, item.payload); err != nil {
				select {
				case s.errCh <- err:
				case <-s.done:
				}
				return
			}
		}
	}()
	// Receive/forward loop.
	go func() {
		if s.OnLoops != nil {
			defer s.OnLoops.Done()
		}
		defer close(s.batches)
		defer fq.close()
		pending := s.transitPairs()
		selfEOFs := 0
		needSelf := len(s.Spec.Nodes) // one EOF per sender incl. self
		for selfEOFs < needSelf || len(pending) > 0 {
			msg, err := s.ep.Recv(s.Spec.Channel)
			if err != nil {
				select {
				case s.errCh <- err:
				case <-s.done:
				}
				return
			}
			destPos := s.Spec.position(msg.Dest)
			if destPos != s.selfPos {
				// Forward toward the destination (we are a hub).
				next := s.ring.NextHop(s.selfPos, destPos)
				fq.push(forwardItem{to: s.Spec.Nodes[next], dest: msg.Dest, payload: msg.Payload})
				if msg.Payload[0] == msgEOF {
					origin := int(binary.LittleEndian.Uint16(msg.Payload[1:]))
					delete(pending, [2]int{origin, destPos})
				}
				continue
			}
			msgType, origin, rows, err := decodeBatch(msg.Payload)
			if err != nil {
				select {
				case s.errCh <- err:
				case <-s.done:
				}
				return
			}
			if msgType == msgEOF {
				selfEOFs++
				delete(pending, [2]int{origin, destPos})
				continue
			}
			// One decoded message = one slab delivered downstream; the
			// decode allocated it fresh, so the consumer owns it.
			select {
			case s.batches <- rows:
			case <-s.done:
				// Consumer abandoned the stream (early Close); keep
				// draining the network so peers and hubs are not wedged,
				// but stop delivering locally.
			}
		}
	}()
	// Send loop: partition the local input, moving it on the batch path
	// when the input offers one.
	go func() {
		n := len(s.Spec.Nodes)
		wire := s.ctx.wireBatchRows()
		batches := make([][]types.Row, n)
		flush := func(dest int) error {
			if len(batches[dest]) == 0 {
				return nil
			}
			if dest == s.selfPos {
				// Local partition: deliver without the network (and without
				// the old encode/decode roundtrip). The buffer is reused, so
				// hand the consumer a copy.
				cp := make([]types.Row, len(batches[dest]))
				copy(cp, batches[dest])
				batches[dest] = batches[dest][:0]
				select {
				case s.batches <- cp:
					return nil
				case <-s.done:
					return errShuffleClosed
				}
			}
			payload := encodeBatch(msgData, s.selfPos, batches[dest])
			batches[dest] = batches[dest][:0]
			return s.send(dest, payload)
		}
		// eofAll emits this sender's EOF to every destination exactly once —
		// peers and our own receive loop (which counts a self-EOF) need one
		// each to terminate, on success and failure paths alike. Returns the
		// first send error (already-failed callers ignore it).
		eofSent := make([]bool, n)
		eofAll := func() error {
			var firstErr error
			for d := 0; d < n; d++ {
				if eofSent[d] {
					continue
				}
				eofSent[d] = true
				var err error
				if d == s.selfPos {
					err = s.ep.Send(s.ep.NodeID(), s.ep.NodeID(), s.Spec.Channel, encodeBatch(msgEOF, s.selfPos, nil))
				} else {
					err = s.send(d, encodeBatch(msgEOF, s.selfPos, nil))
				}
				if err != nil && firstErr == nil {
					firstErr = err
				}
			}
			return firstErr
		}
		fail := func(err error) {
			if err != errShuffleClosed {
				select {
				case s.errCh <- err:
				case <-s.done:
				}
			}
			// Still emit EOFs so peers (and our receive loop) terminate.
			_ = eofAll()
		}
		route := func(r types.Row) error {
			if s.Spec.Broadcast {
				for dest := 0; dest < n; dest++ {
					batches[dest] = append(batches[dest], r)
					if len(batches[dest]) >= wire {
						if err := flush(dest); err != nil {
							return err
						}
					}
				}
				return nil
			}
			hk, err := HashKeys(s.Keys, r)
			if err != nil {
				return err
			}
			dest := int(hk % uint64(n))
			batches[dest] = append(batches[dest], r)
			if len(batches[dest]) >= wire {
				return flush(dest)
			}
			return nil
		}
		if s.In != nil {
			bin := ToBatch(s.In, wire)
			for {
				// Killed query: stop partitioning between batches. fail()
				// still emits EOFs, so peers and hubs terminate normally.
				if err := s.ctx.canceled(); err != nil {
					fail(err)
					return
				}
				b, ok, err := bin.NextBatch()
				if err != nil {
					fail(err)
					return
				}
				if !ok {
					break
				}
				for _, r := range b {
					if err := route(r); err != nil {
						fail(err)
						return
					}
				}
			}
		}
		for d := 0; d < n; d++ {
			if err := flush(d); err != nil {
				fail(err)
				return
			}
		}
		// EOF per destination (own EOF counted directly by the receive loop).
		if err := eofAll(); err != nil {
			select {
			case s.errCh <- err:
			case <-s.done:
			}
		}
	}()
}

// Next implements Operator, iterating the current delivered slab.
func (s *Shuffle) Next() (types.Row, bool, error) {
	for s.pos >= len(s.cur) {
		b, ok, err := s.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		//lint:ignore slabown row cursor: the shuffle owns the delivered slab and drains cur before the next NextBatch
		s.cur, s.pos = b, 0
	}
	r := s.cur[s.pos]
	s.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator: one received (or locally routed)
// wire batch per call.
func (s *Shuffle) NextBatch() ([]types.Row, bool, error) {
	select {
	case err := <-s.errCh:
		return nil, false, err
	case b, ok := <-s.batches:
		if !ok {
			select {
			case err := <-s.errCh:
				return nil, false, err
			default:
			}
			return nil, false, nil
		}
		return b, true, nil
	}
}

// Close implements Operator. Closing the done channel unblocks any loop
// goroutine parked on a row delivery, so an abandoned shuffle (e.g. under an
// error or an early LIMIT) cannot leak its senders.
func (s *Shuffle) Close() error {
	if s.closeOnce != nil {
		s.closeOnce.Do(func() { close(s.done) })
	}
	if s.In != nil {
		return s.In.Close()
	}
	return nil
}

// SendAll drains an operator and sends every row to one receiver — the
// worker side of a gather (workers → coordinator result routing). ctx
// sizes the wire batches and may be nil (DefaultWireBatchRows applies);
// the input moves on its batch path when it offers one.
func SendAll(ctx *Ctx, ep network.Endpoint, to int, channel string, in Operator) error {
	if err := in.Open(); err != nil {
		return err
	}
	defer in.Close()
	wire := ctx.wireBatchRows()
	if v, ok := nativeVec(in); ok {
		return sendAllVec(ctx, ep, to, channel, v, wire)
	}
	var batch []types.Row
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := ep.Send(to, to, channel, encodeBatch(msgData, ep.NodeID(), batch))
		batch = batch[:0]
		return err
	}
	bin := ToBatch(in, wire)
	for {
		// Killed query: abort between batches but still EOF the receiver so
		// the gather protocol terminates on the coordinator.
		if err := ctx.canceled(); err != nil {
			_ = ep.Send(to, to, channel, encodeBatch(msgEOF, ep.NodeID(), nil))
			return err
		}
		b, ok, err := bin.NextBatch()
		if err != nil {
			_ = flush()
			_ = ep.Send(to, to, channel, encodeBatch(msgEOF, ep.NodeID(), nil))
			return err
		}
		if !ok {
			break
		}
		for _, r := range b {
			batch = append(batch, r)
			if len(batch) >= wire {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return ep.Send(to, to, channel, encodeBatch(msgEOF, ep.NodeID(), nil))
}

// sendAllVec is SendAll's vector-native path: batches are encoded straight
// from typed column slabs — no boxed row materialization on the send side —
// chunked into wire messages of at most wire active rows each, so message
// counts derive from the same Ctx.BatchRows knob as the row path.
func sendAllVec(ctx *Ctx, ep network.Endpoint, to int, channel string, v VecOperator, wire int) error {
	for {
		if err := ctx.canceled(); err != nil {
			_ = ep.Send(to, to, channel, encodeBatch(msgEOF, ep.NodeID(), nil))
			return err
		}
		b, ok, err := v.NextVec()
		if err != nil {
			_ = ep.Send(to, to, channel, encodeBatch(msgEOF, ep.NodeID(), nil))
			return err
		}
		if !ok {
			break
		}
		n := b.Rows()
		for off := 0; off < n; off += wire {
			end := off + wire
			if end > n {
				end = n
			}
			payload := exchangeHeader(make([]byte, 0, 64), msgData, ep.NodeID())
			payload = vec.EncodeBatch(payload, b, off, end)
			if err := ep.Send(to, to, channel, payload); err != nil {
				return err
			}
		}
	}
	return ep.Send(to, to, channel, encodeBatch(msgEOF, ep.NodeID(), nil))
}

// Recv yields rows arriving on a channel until EOFs from all expected
// senders — the coordinator side of a gather.
type Recv struct {
	Ep       network.Endpoint
	Channel  string
	Senders  int
	Sch      types.Schema
	buf      []types.Row
	pos      int
	eofs     int
	finished bool
}

// NewRecv builds the receive operator.
func NewRecv(ep network.Endpoint, channel string, senders int, sch types.Schema) *Recv {
	return &Recv{Ep: ep, Channel: channel, Senders: senders, Sch: sch}
}

// Schema implements Operator.
func (r *Recv) Schema() types.Schema { return r.Sch }

// Open implements Operator.
func (r *Recv) Open() error {
	r.buf, r.pos, r.eofs, r.finished = nil, 0, 0, false
	return nil
}

// Next implements Operator.
func (r *Recv) Next() (types.Row, bool, error) {
	for {
		if r.pos < len(r.buf) {
			row := r.buf[r.pos]
			r.pos++
			return row, true, nil
		}
		if r.finished {
			return nil, false, nil
		}
		msg, err := r.Ep.Recv(r.Channel)
		if err != nil {
			return nil, false, err
		}
		msgType, _, rows, err := decodeBatch(msg.Payload)
		if err != nil {
			return nil, false, err
		}
		if msgType == msgEOF {
			r.eofs++
			if r.eofs >= r.Senders {
				r.finished = true
			}
			continue
		}
		r.buf, r.pos = rows, 0
	}
}

// NextBatch implements BatchOperator: one received wire batch per call
// (the decode allocated it fresh, so the consumer owns it).
func (r *Recv) NextBatch() ([]types.Row, bool, error) {
	for {
		if r.pos < len(r.buf) {
			out := r.buf[r.pos:]
			r.pos = len(r.buf)
			return out, true, nil
		}
		if r.finished {
			return nil, false, nil
		}
		msg, err := r.Ep.Recv(r.Channel)
		if err != nil {
			return nil, false, err
		}
		msgType, _, rows, err := decodeBatch(msg.Payload)
		if err != nil {
			return nil, false, err
		}
		if msgType == msgEOF {
			r.eofs++
			if r.eofs >= r.Senders {
				r.finished = true
			}
			continue
		}
		r.buf, r.pos = rows, 0
	}
}

// Close implements Operator.
func (r *Recv) Close() error { return nil }

// Broadcast sends every input row to all listed nodes (replicated/broadcast
// join build sides). ctx sizes the wire batches and may be nil.
func Broadcast(ctx *Ctx, ep network.Endpoint, nodes []int, channel string, in Operator) error {
	rows, err := Collect(in)
	if err != nil {
		return err
	}
	wire := ctx.wireBatchRows()
	for _, node := range nodes {
		for i := 0; i < len(rows); i += wire {
			end := i + wire
			if end > len(rows) {
				end = len(rows)
			}
			if err := ep.Send(node, node, channel, encodeBatch(msgData, ep.NodeID(), rows[i:end])); err != nil {
				return err
			}
		}
		if err := ep.Send(node, node, channel, encodeBatch(msgEOF, ep.NodeID(), nil)); err != nil {
			return err
		}
	}
	return nil
}

// TreeReduceSpec describes a tree-topology reduction (hierarchical
// aggregation, distributed merge sort, 2PC-style fan-in).
type TreeReduceSpec struct {
	Channel string
	Nodes   []int // participant IDs; Nodes[0] is the root
	Nmax    int
}

// RunTreeReduce executes one node's role in a tree reduction. combine wraps
// the local input and the child streams into one operator (e.g. a merge
// aggregate or an ordered merge); non-root nodes drain the combined stream
// to their parent and return nil; the root returns the combined operator
// for downstream consumption.
func RunTreeReduce(ctx *Ctx, ep network.Endpoint, spec TreeReduceSpec, local Operator,
	combine func(ins []Operator) Operator) (Operator, error) {
	tree, err := topology.NewTree(len(spec.Nodes), spec.Nmax)
	if err != nil {
		return nil, err
	}
	pos := -1
	for i, id := range spec.Nodes {
		if id == ep.NodeID() {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("exec: node %d not in tree spec", ep.NodeID())
	}
	// Ordered merges need per-child streams, so each tree edge gets its own
	// channel with exactly one sender. The local branch goes FIRST: when the
	// local pipeline participates in an all-to-all shuffle, every node must
	// keep consuming its shuffle input for the senders to finish. A combine
	// that drained child partials before the local branch would park this
	// node's shuffle consumer behind Recv, the undelivered shuffle traffic
	// would fill this node's mailbox, the last shuffle sender would block,
	// and the leaves — stuck waiting for that sender's partitions — could
	// never produce the partials Recv is waiting for (deadlocks TPC-H Q7
	// once the working set outgrows the mailbox bound).
	children := tree.Children(pos)
	ins := make([]Operator, 0, len(children)+1)
	ins = append(ins, local)
	for _, c := range children {
		ins = append(ins, NewRecv(ep, fmt.Sprintf("%s:edge:%d-%d", spec.Channel, c, pos), 1, local.Schema()))
	}
	combined := combine(ins)
	if pos == 0 {
		return combined, nil
	}
	parent := tree.Parent(pos)
	ch := fmt.Sprintf("%s:edge:%d-%d", spec.Channel, pos, parent)
	if err := SendAll(ctx, ep, spec.Nodes[parent], ch, combined); err != nil {
		return nil, err
	}
	return nil, nil
}

// MergeOperators performs an ordered k-way merge of sorted inputs — the
// non-leaf phase of the distributed merge sort.
type MergeOperators struct {
	Ins  []Operator
	Keys []SortKey
	cur  []types.Row // head row per input (nil = exhausted)
	init bool
}

// NewMergeOperators builds the ordered merge.
func NewMergeOperators(ins []Operator, keys []SortKey) *MergeOperators {
	return &MergeOperators{Ins: ins, Keys: keys}
}

// Schema implements Operator.
func (m *MergeOperators) Schema() types.Schema {
	if len(m.Ins) == 0 {
		return types.Schema{}
	}
	return m.Ins[0].Schema()
}

// Open implements Operator.
func (m *MergeOperators) Open() error {
	m.cur = nil
	m.init = false
	for _, in := range m.Ins {
		if err := in.Open(); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator.
func (m *MergeOperators) Next() (types.Row, bool, error) {
	if !m.init {
		m.cur = make([]types.Row, len(m.Ins))
		for i, in := range m.Ins {
			r, ok, err := in.Next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				m.cur[i] = r
			}
		}
		m.init = true
	}
	best := -1
	for i, r := range m.cur {
		if r == nil {
			continue
		}
		if best < 0 || compareByKeys(r, m.cur[best], m.Keys) < 0 {
			best = i
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	out := m.cur[best]
	r, ok, err := m.Ins[best].Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		m.cur[best] = r
	} else {
		m.cur[best] = nil
	}
	return out, true, nil
}

// Close implements Operator.
func (m *MergeOperators) Close() error {
	var firstErr error
	for _, in := range m.Ins {
		if err := in.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SortedNodeList returns a deterministic participant ordering (callers
// must agree on Nodes ordering across the cluster).
func SortedNodeList(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

// forwardItem is one queued hub-forwarding send.
type forwardItem struct {
	to      int
	dest    int
	payload []byte
}

// forwardQueue is an unbounded MPSC queue: pushes never block, and pop
// drains remaining items after close before reporting exhaustion.
type forwardQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []forwardItem
	closed bool
}

func newForwardQueue() *forwardQueue {
	q := &forwardQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *forwardQueue) push(item forwardItem) {
	q.mu.Lock()
	q.items = append(q.items, item)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *forwardQueue) pop() (forwardItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return forwardItem{}, false
	}
	item := q.items[0]
	q.items = q.items[1:]
	return item, true
}

func (q *forwardQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
