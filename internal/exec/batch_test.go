package exec

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/testutil"
	"repro/internal/tpch"
	"repro/internal/types"
)

// schemaFor infers a schema from a sample row (the exec layer only needs
// names and kinds for metadata; tpch rows carry their kinds in the values).
func schemaFor(r types.Row) types.Schema {
	cols := make([]types.Column, len(r))
	for i, v := range r {
		cols[i] = types.Column{Name: fmt.Sprintf("c%d", i), Kind: v.K}
	}
	return types.Schema{Cols: cols}
}

// assertSameRows compares two results as multisets, order-insensitive.
func assertSameRows(t *testing.T, got, want []types.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count = %d, want %d", len(got), len(want))
	}
	counts := make(map[string]int, len(want))
	for _, r := range want {
		counts[r.String()]++
	}
	for _, r := range got {
		counts[r.String()]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("row %q: multiset difference %+d", k, -c)
		}
	}
}

func TestAdaptersRoundTrip(t *testing.T) {
	rows := intRows([]int64{1}, []int64{2}, []int64{3}, []int64{4}, []int64{5}, []int64{6}, []int64{7})
	sch := intSchema("a")

	// Passthrough identities: a batch-native operator survives ToBatch
	// unchanged, and any Operator survives FromBatch unchanged.
	src := NewSource(sch, rows)
	if b := ToBatch(src, 4); b != BatchOperator(src) {
		t.Error("ToBatch must pass a batch-native operator through")
	}
	if op := FromBatch(src); op != Operator(src) {
		t.Error("FromBatch must pass an Operator through")
	}
	// RowOnly hides the batch path, forcing the real adapters.
	ro := RowOnly(NewSource(sch, rows))
	if _, ok := nativeBatch(ro); ok {
		t.Fatal("RowOnly operator must not type-assert to BatchOperator")
	}
	bin := ToBatch(ro, 3)
	if err := bin.Open(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		b, ok, err := bin.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(b) == 0 || len(b) > 3 {
			t.Fatalf("adapter slab size = %d, want 1..3", len(b))
		}
		total += len(b)
	}
	if total != len(rows) {
		t.Fatalf("adapter delivered %d rows, want %d", total, len(rows))
	}
	if err := bin.Close(); err != nil {
		t.Fatal(err)
	}

	// Full round trip through both adapters preserves content and order.
	round := FromBatch(ToBatch(RowOnly(NewSource(sch, rows)), 3))
	if _, isSrc := round.(*Source); isSrc {
		t.Fatal("round trip should go through real adapters, not identity")
	}
	out, err := Collect(round)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rows) {
		t.Fatalf("round trip = %d rows, want %d", len(out), len(rows))
	}
	for i := range out {
		if out[i][0].Int() != rows[i][0].Int() {
			t.Fatalf("round trip row %d = %v, want %v", i, out[i], rows[i])
		}
	}
}

// TestBatchRowParityPipeline runs the same scan→filter→project→aggregate
// pipeline on the scalar engine (RowOnly inputs) and on the batch path at
// several slab sizes, and demands identical results.
func TestBatchRowParityPipeline(t *testing.T) {
	var rows []types.Row
	for i := int64(0); i < 5000; i++ {
		rows = append(rows, types.Row{types.NewInt(i % 37), types.NewInt(i)})
	}
	sch := intSchema("g", "v")
	build := func(ctx *Ctx, rowOnly bool) Operator {
		var in Operator = NewSource(sch, rows)
		if rowOnly {
			in = RowOnly(in)
		}
		f := NewFilter(ctx, in, gt(col(1), ci(99)))
		var fin Operator = f
		if rowOnly {
			fin = RowOnly(f)
		}
		p := NewProject(ctx, fin, []expr.Expr{col(0), add(col(1), ci(1))}, []string{"g", "v1"})
		var pin Operator = p
		if rowOnly {
			pin = RowOnly(p)
		}
		return NewHashAggregate(ctx, pin, ColRefs(0), []AggSpec{
			{Kind: AggSum, Arg: col(1), Name: "s"},
			{Kind: AggCount, Name: "c"},
		}, AggComplete)
	}
	want, err := Collect(build(NewCtx("", 0), true))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 37 {
		t.Fatalf("baseline groups = %d, want 37", len(want))
	}
	for _, batchRows := range []int{1, 7, 1024} {
		ctx := NewCtx("", 0)
		ctx.BatchRows = batchRows
		got, err := Collect(build(ctx, false))
		if err != nil {
			t.Fatalf("batch=%d: %v", batchRows, err)
		}
		assertSameRows(t, got, want)
	}
}

// TestGraceJoinAdapterSpillParity feeds a spilling grace hash join through
// the FromBatch∘ToBatch adapter chain on both inputs and golden-compares
// against the plain row path on TPC-H SF0.01.
func TestGraceJoinAdapterSpillParity(t *testing.T) {
	d := tpch.Generate(0.01, 42)
	lineSch := schemaFor(d.Lineitem[0])
	ordSch := schemaFor(d.Orders[0])
	run := func(adapters bool) ([]types.Row, *Ctx) {
		ctx := NewCtx(t.TempDir(), 2000) // orders(15000) overflows: grace join
		probe := Operator(NewSource(lineSch, d.Lineitem))
		build := Operator(NewSource(ordSch, d.Orders))
		if adapters {
			probe = FromBatch(ToBatch(RowOnly(probe), 512))
			build = FromBatch(ToBatch(RowOnly(build), 512))
		}
		j := NewHashJoin(ctx, probe, build, ColRefs(0), ColRefs(0), JoinInner, nil, 2)
		out, err := Collect(j)
		if err != nil {
			t.Fatal(err)
		}
		return out, ctx
	}
	want, rowCtx := run(false)
	got, adCtx := run(true)
	if rowCtx.SpillFiles.Load() == 0 || adCtx.SpillFiles.Load() == 0 {
		t.Fatalf("grace join must spill on both paths (row=%d adapter=%d files)",
			rowCtx.SpillFiles.Load(), adCtx.SpillFiles.Load())
	}
	if len(want) != len(d.Lineitem) {
		t.Fatalf("join rows = %d, want %d (every lineitem has an order)", len(want), len(d.Lineitem))
	}
	assertSameRows(t, got, want)
}

// TestSortAdapterSpillParity runs an external (spilling) sort whose input
// arrives through the adapter chain and compares the exact output sequence
// with the row path.
func TestSortAdapterSpillParity(t *testing.T) {
	d := tpch.Generate(0.01, 7)
	rows := d.Lineitem[:20000]
	sch := schemaFor(rows[0])
	keys := []SortKey{{Col: 4, Desc: true}, {Col: 0}, {Col: 3}}
	run := func(adapters bool) ([]types.Row, *Ctx) {
		ctx := NewCtx(t.TempDir(), 1000)
		in := Operator(NewSource(sch, rows))
		if adapters {
			in = FromBatch(ToBatch(RowOnly(in), 256))
		}
		out, err := Collect(NewSort(ctx, in, keys))
		if err != nil {
			t.Fatal(err)
		}
		return out, ctx
	}
	want, rowCtx := run(false)
	got, adCtx := run(true)
	if rowCtx.SpillFiles.Load() == 0 || adCtx.SpillFiles.Load() == 0 {
		t.Fatalf("sort must spill on both paths (row=%d adapter=%d files)",
			rowCtx.SpillFiles.Load(), adCtx.SpillFiles.Load())
	}
	if len(got) != len(want) {
		t.Fatalf("sorted rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].String() != want[i].String() {
			t.Fatalf("sorted output diverges at row %d:\n  adapter: %v\n  row:     %v", i, got[i], want[i])
		}
	}
}

// TestSendAllHonorsWireBatchRows pins the Ctx.BatchRows knob to the wire:
// message counts on the fabric meter must match ceil(rows/batch) data
// messages plus one EOF.
func TestSendAllHonorsWireBatchRows(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	cases := []struct {
		name     string
		ctx      *Ctx
		rows     int
		wantMsgs int64
	}{
		{"explicit-5", func() *Ctx { c := NewCtx("", 0); c.BatchRows = 5; return c }(), 15, 3 + 1},
		{"explicit-5-remainder", func() *Ctx { c := NewCtx("", 0); c.BatchRows = 5; return c }(), 17, 4 + 1},
		{"default-128", nil, 300, 3 + 1}, // ceil(300/128)=3 data + EOF
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fabric := network.NewFabric([]int{0, 1}, 64)
			defer fabric.CloseAll()
			sch := intSchema("a")
			var rows []types.Row
			for i := 0; i < tc.rows; i++ {
				rows = append(rows, types.Row{types.NewInt(int64(i))})
			}
			ep1, _ := fabric.Endpoint(1)
			if err := SendAll(tc.ctx, ep1, 0, "knob", NewSource(sch, rows)); err != nil {
				t.Fatal(err)
			}
			ep0, _ := fabric.Endpoint(0)
			got, err := Collect(NewRecv(ep0, "knob", 1, sch))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != tc.rows {
				t.Fatalf("received %d rows, want %d", len(got), tc.rows)
			}
			if n := fabric.Meter().TotalMessages(); n != tc.wantMsgs {
				t.Errorf("wire messages = %d, want %d", n, tc.wantMsgs)
			}
		})
	}
}

// TestShuffleTinyBatchRows exercises the batched shuffle with a slab size
// small enough that every code path crosses slab boundaries repeatedly.
func TestShuffleTinyBatchRows(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	const n, perNode = 3, 100
	ids := []int{0, 1, 2}
	fabric := network.NewFabric(ids, 256)
	defer fabric.CloseAll()
	spec := ShuffleSpec{Channel: "tiny", Nodes: ids}
	results := make([][]types.Row, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- i }()
			ctx := NewCtx("", 0)
			ctx.BatchRows = 3
			ep, err := fabric.Endpoint(i)
			if err != nil {
				errs[i] = err
				return
			}
			var rows []types.Row
			for k := 0; k < perNode; k++ {
				rows = append(rows, types.Row{
					types.NewInt(int64((i*perNode + k) % 16)),
					types.NewInt(int64(i*perNode + k)),
				})
			}
			sh, err := NewShuffle(ctx, ep, spec, NewSource(intSchema("k", "v"), rows), ColRefs(0), types.Schema{})
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = Collect(sh)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	checkShuffleCorrect(t, results, n, n*perNode)
}

// TestHashAggregateNextBatchWindows drives the aggregate's batch interface
// directly: slabs must respect Ctx.BatchRows, never be empty, and cover
// every group exactly once.
func TestHashAggregateNextBatchWindows(t *testing.T) {
	ctx := NewCtx("", 0)
	ctx.BatchRows = 7
	var rows []types.Row
	for i := int64(0); i < 1000; i++ {
		rows = append(rows, types.Row{types.NewInt(i % 100), types.NewInt(i)})
	}
	agg := NewHashAggregate(ctx, NewSource(intSchema("g", "v"), rows), ColRefs(0),
		[]AggSpec{{Kind: AggCount, Name: "c"}}, AggComplete)
	if err := agg.Open(); err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	seen := map[int64]bool{}
	for {
		b, ok, err := agg.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(b) == 0 || len(b) > 7 {
			t.Fatalf("aggregate slab size = %d, want 1..7", len(b))
		}
		for _, r := range b {
			if seen[r[0].Int()] {
				t.Fatalf("group %d delivered twice", r[0].Int())
			}
			seen[r[0].Int()] = true
			if r[1].Int() != 10 {
				t.Fatalf("group %d count = %d, want 10", r[0].Int(), r[1].Int())
			}
		}
	}
	if len(seen) != 100 {
		t.Fatalf("groups = %d, want 100", len(seen))
	}
}

// TestTracedBatchCounts verifies that the batch path keeps observability:
// a traced batch-native operator still counts rows and also counts slabs.
func TestTracedBatchCounts(t *testing.T) {
	sch := intSchema("x")
	var rows []types.Row
	for i := int64(0); i < 3000; i++ {
		rows = append(rows, types.Row{types.NewInt(i)})
	}
	tr := obs.NewQueryTrace(1, "")
	sp := tr.StartSpan("Source", 0)
	op := NewTraced(NewSource(sch, rows), sp)
	if _, ok := nativeBatch(op); !ok {
		t.Fatal("tracing a batch-native operator must preserve the batch path")
	}
	got, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("collected %d rows", len(got))
	}
	snap := tr.Spans()[0]
	if snap.RowsOut != int64(len(rows)) {
		t.Errorf("span rows_out = %d, want %d", snap.RowsOut, len(rows))
	}
	// 3000 rows at the default 1024-row slab = 3 slabs.
	if snap.Batches != 3 {
		t.Errorf("span batches = %d, want 3", snap.Batches)
	}
}
