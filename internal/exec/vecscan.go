package exec

import (
	"repro/internal/page"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vec"
)

// vecScanFeed is the vector sibling of scanFeed: a scan thread decodes PAX
// page sets straight into typed column slabs and ships whole *vec.Batch
// values across one channel. Each shipped batch is freshly built with its
// own dictionaries (never touched by the scan thread again), so consumers
// own shipped batches outright — stronger than the NextVec contract needs —
// and no dictionary is ever shared across the goroutine boundary while
// still being appended to.
type vecScanFeed struct {
	sch     types.Schema
	start   func(snd *vecBatchSender) error
	batches chan *vec.Batch
	errCh   chan error
	stop    chan struct{}
	batch   int
	depth   int
	started bool
	closed  bool
}

func (s *vecScanFeed) Schema() types.Schema { return s.sch }

func (s *vecScanFeed) Open() error {
	if s.batch <= 0 {
		s.batch = DefaultBatchRows
	}
	if s.depth <= 0 {
		s.depth = DefaultScanFeedDepth
	}
	s.batches = make(chan *vec.Batch, s.depth)
	s.errCh = make(chan error, 1)
	s.stop = make(chan struct{})
	s.started = false
	s.closed = false
	return nil
}

func (s *vecScanFeed) launch() {
	s.started = true
	go func() {
		snd := &vecBatchSender{out: s.batches, stop: s.stop, sch: s.sch, size: s.batch}
		err := s.start(snd)
		if err != nil {
			select {
			case s.errCh <- err:
			case <-s.stop:
				// Consumer closed early; nobody will read the error.
			}
		}
		close(s.batches)
	}()
}

// NextVec implements the vector half of VecOperator.
func (s *vecScanFeed) NextVec() (*vec.Batch, bool, error) {
	if !s.started {
		s.launch()
	}
	b, ok := <-s.batches
	if ok {
		return b, true, nil
	}
	select {
	case err := <-s.errCh:
		return nil, false, err
	default:
		return nil, false, nil
	}
}

func (s *vecScanFeed) Close() error {
	if !s.closed {
		s.closed = true
		if s.stop != nil {
			close(s.stop)
		}
		// Drain so the producer goroutine can exit; bounded exactly like
		// scanFeed.Close (the producer observes stop in flush).
		if s.batches != nil {
			go func(ch chan *vec.Batch) {
				for range ch {
				}
			}(s.batches)
		}
	}
	return nil
}

// vecBatchSender accumulates decoded page sets into a batch and ships the
// batch once it reaches the slab size. Shipped batches are never reused.
type vecBatchSender struct {
	out   chan<- *vec.Batch
	stop  <-chan struct{}
	sch   types.Schema
	size  int
	cur   *vec.Batch
	sent  int64
	nrows int64
}

// building returns the batch under construction, allocating a fresh one
// (fresh dictionaries) after every flush.
func (b *vecBatchSender) building() *vec.Batch {
	if b.cur == nil {
		b.cur = vec.New(b.sch)
	}
	return b.cur
}

// maybeFlush ships the batch when full; reports false when the consumer is
// gone and the scan should abort.
func (b *vecBatchSender) maybeFlush() bool {
	if b.cur == nil || b.cur.N < b.size {
		return true
	}
	return b.flush()
}

// flush ships the current batch (if non-empty).
func (b *vecBatchSender) flush() bool {
	if b.cur == nil || b.cur.N == 0 {
		return true
	}
	select {
	case b.out <- b.cur:
		b.sent++
		b.nrows += int64(b.cur.N)
		b.cur = nil
		return true
	case <-b.stop:
		return false
	}
}

// VecColumnarScan is the vector-native PAX-table scan: page sets are
// decoded column-wise into typed slabs while their frames stay pinned —
// no boxed row slab is ever materialized. Page-set skipping (predicate
// cache and min-max) applies as in ColumnarScan; per-row predicate
// evaluation moves downstream into a VecFilter (see NewVecColumnarScan),
// so predicate-cache absence recording does not happen on this path. The
// scan thread is serial; morsel-parallel scans stay on the row path.
type VecColumnarScan struct {
	vecScanFeed
	vecRowShim
	fr  *storage.ColumnarFragment
	cfg ScanConfig
}

// NewVecColumnarScan builds a vectorized scan over a columnar fragment.
// When cfg.Pred is set, the scan is wrapped in a VecFilter so the returned
// operator drops non-matching rows exactly like ColumnarScan does.
func NewVecColumnarScan(fr *storage.ColumnarFragment, alias string, cfg ScanConfig) VecOperator {
	sch := fr.Def.Schema
	if alias != "" {
		sch = sch.Qualify(alias)
	}
	cs := &VecColumnarScan{fr: fr, cfg: cfg}
	cs.vecScanFeed.sch = sch
	cs.vecScanFeed.start = cs.run
	cs.vecScanFeed.batch = cfg.BatchRows
	cs.vecScanFeed.depth = cfg.Ctx.scanFeedDepth()
	cs.vecRowShim.src = cs
	if cfg.Pred != nil {
		return NewVecFilter(cfg.Ctx, cs, cfg.Pred)
	}
	return cs
}

// Open implements Operator.
func (cs *VecColumnarScan) Open() error {
	cs.cur, cs.pos = nil, 0
	return cs.vecScanFeed.Open()
}

func (cs *VecColumnarScan) run(snd *vecBatchSender) error {
	opts := buildScanOptions(cs.cfg)
	stats, err := cs.fr.ScanPageSets(opts, func(set page.PageSet) (bool, error) {
		b := snd.building()
		for ci := range set.Pages {
			col := &b.Cols[ci]
			if derr := set.Pages[ci].DecodeInto(func(v types.Value) bool {
				col.Append(v)
				return true
			}); derr != nil {
				return false, derr
			}
		}
		b.N += set.NumRows()
		return snd.maybeFlush(), nil
	})
	snd.flush()
	if cs.cfg.Stats != nil {
		*cs.cfg.Stats = stats
	}
	cs.cfg.Trace.AddScan(stats.RowsRead, stats.PagesRead, stats.PagesSkipped)
	cs.cfg.Trace.AddVecBatches(snd.sent)
	return err
}
