package exec

import (
	"errors"

	"repro/internal/expr"
	"repro/internal/page"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vec"
)

// vecScanFeed is the vector sibling of scanFeed: a scan thread decodes PAX
// page sets straight into typed column slabs and ships whole *vec.Batch
// values across one channel. Each shipped batch is freshly built with its
// own dictionaries (never touched by the scan thread again), so consumers
// own shipped batches outright — stronger than the NextVec contract needs —
// and no dictionary is ever shared across the goroutine boundary while
// still being appended to.
type vecScanFeed struct {
	sch     types.Schema
	start   func(snd *vecBatchSender) error
	batches chan *vec.Batch
	errCh   chan error
	stop    chan struct{}
	cancel  *Cancel
	batch   int
	depth   int
	started bool
	closed  bool
}

func (s *vecScanFeed) Schema() types.Schema { return s.sch }

func (s *vecScanFeed) Open() error {
	if s.batch <= 0 {
		s.batch = DefaultBatchRows
	}
	if s.depth <= 0 {
		s.depth = DefaultScanFeedDepth
	}
	s.batches = make(chan *vec.Batch, s.depth)
	s.errCh = make(chan error, 1)
	s.stop = make(chan struct{})
	s.started = false
	s.closed = false
	return nil
}

func (s *vecScanFeed) launch() {
	s.started = true
	go func() {
		snd := &vecBatchSender{out: s.batches, stop: s.stop, cancel: s.cancel, sch: s.sch, size: s.batch}
		err := s.start(snd)
		if err != nil {
			select {
			case s.errCh <- err:
			case <-s.stop:
				// Consumer closed early; nobody will read the error.
			}
		}
		close(s.batches)
	}()
}

// NextVec implements the vector half of VecOperator.
func (s *vecScanFeed) NextVec() (*vec.Batch, bool, error) {
	if !s.started {
		s.launch()
	}
	b, ok := <-s.batches
	if ok {
		return b, true, nil
	}
	select {
	case err := <-s.errCh:
		return nil, false, err
	default:
		return nil, false, nil
	}
}

func (s *vecScanFeed) Close() error {
	if !s.closed {
		s.closed = true
		if s.stop != nil {
			close(s.stop)
		}
		// Drain so the producer goroutine can exit; bounded exactly like
		// scanFeed.Close (the producer observes stop in flush).
		if s.batches != nil {
			go func(ch chan *vec.Batch) {
				for range ch {
				}
			}(s.batches)
		}
	}
	return nil
}

// vecBatchSender accumulates decoded page sets into a batch and ships the
// batch once it reaches the slab size. Shipped batches are never reused.
type vecBatchSender struct {
	out    chan<- *vec.Batch
	stop   <-chan struct{}
	cancel *Cancel
	sch    types.Schema
	size   int
	cur    *vec.Batch
	sent   int64
	nrows  int64
}

// building returns the batch under construction, allocating a fresh one
// (fresh dictionaries) after every flush.
func (b *vecBatchSender) building() *vec.Batch {
	if b.cur == nil {
		b.cur = vec.New(b.sch)
	}
	return b.cur
}

// maybeFlush ships the batch when full; reports false when the consumer is
// gone and the scan should abort.
func (b *vecBatchSender) maybeFlush() bool {
	if b.cur == nil || b.cur.N < b.size {
		return true
	}
	return b.flush()
}

// flush ships the current batch (if non-empty).
func (b *vecBatchSender) flush() bool {
	if b.cur == nil || b.cur.N == 0 {
		return true
	}
	select {
	case b.out <- b.cur:
		b.sent++
		b.nrows += int64(b.cur.N)
		b.cur = nil
		return true
	case <-b.stop:
		return false
	case <-b.cancel.Done():
		// Killed query: stop producing, exactly like batchSender.
		return false
	}
}

// VecColumnarScan is the vector-native PAX-table scan: page sets are
// decoded column-wise by the typed page decoders straight into slab
// columns while their frames stay pinned — no types.Value is ever boxed on
// the typed path (pages whose cells mismatch their declared kind fall back
// to DecodeInto per page, counted in the decode_boxed_pages counter).
//
// When the predicate compiles to a vector kernel, it is evaluated at
// decode time: the predicate's columns are decoded first, the kernel
// produces a selection vector, and the remaining columns are decoded only
// at the selected positions (late materialization). A page set proven
// empty this way is recorded into the predicate cache exactly like the
// row scan's absence pass. Non-compilable predicates keep the downstream
// VecFilter (see NewVecColumnarScan). Page-set skipping (predicate cache
// and min-max) applies as in ColumnarScan, and cfg.Parallel > 1 runs
// morsel-parallel workers over the sealed sets.
type VecColumnarScan struct {
	vecScanFeed
	vecRowShim
	fr       *storage.ColumnarFragment
	cfg      ScanConfig
	pushdown bool   // predicate compiles: evaluate during decode
	predCols []bool // columns the pushed-down predicate reads
}

// NewVecColumnarScan builds a vectorized scan over a columnar fragment.
// When cfg.Pred is set and compiles to a vector kernel, the scan filters
// during decode (late materialization); otherwise it is wrapped in a
// VecFilter so the returned operator drops non-matching rows exactly like
// ColumnarScan does.
func NewVecColumnarScan(fr *storage.ColumnarFragment, alias string, cfg ScanConfig) VecOperator {
	sch := fr.Def.Schema
	if alias != "" {
		sch = sch.Qualify(alias)
	}
	cs := &VecColumnarScan{fr: fr, cfg: cfg}
	cs.vecScanFeed.sch = sch
	cs.vecScanFeed.start = cs.run
	cs.vecScanFeed.batch = cfg.BatchRows
	cs.vecScanFeed.depth = cfg.Ctx.scanFeedDepth()
	cs.vecScanFeed.cancel = cfg.Ctx.Cancel()
	cs.vecRowShim.src = cs
	if cfg.Pred != nil {
		if compileBool(cfg.Pred, sch) == nil {
			return NewVecFilter(cfg.Ctx, cs, cfg.Pred)
		}
		cs.pushdown = true
		cs.predCols = predCols(cfg.Pred, sch.Len())
	}
	return cs
}

// predCols marks the column indices a compilable predicate reads. The
// walker covers exactly the node shapes compileBool/compileNum accept.
func predCols(e expr.Expr, n int) []bool {
	set := make([]bool, n)
	var walk func(e expr.Expr)
	walk = func(e expr.Expr) {
		switch x := e.(type) {
		case *expr.Col:
			if x.Index >= 0 && x.Index < n {
				set[x.Index] = true
			}
		case *expr.Bin:
			walk(x.L)
			walk(x.R)
		case *expr.Not:
			walk(x.E)
		case *expr.IsNull:
			walk(x.E)
		}
	}
	walk(e)
	return set
}

// Open implements Operator.
func (cs *VecColumnarScan) Open() error {
	cs.cur, cs.pos = nil, 0
	return cs.vecScanFeed.Open()
}

func (cs *VecColumnarScan) run(snd *vecBatchSender) error {
	opts := buildScanOptions(cs.cfg)
	degree := 1
	if cs.cfg.Parallel > 1 {
		degree = cs.cfg.Ctx.AcquireWorkers(cs.cfg.Parallel)
		defer cs.cfg.Ctx.ReleaseWorkers(degree)
	}
	if degree > 1 {
		return cs.runParallel(snd, opts, degree)
	}
	dec := cs.newDecoder()
	stats, err := cs.fr.ScanPageSets(opts, func(set page.PageSet, key page.Key, sealed bool) (bool, error) {
		return dec.decodeSet(snd, set, key, sealed, opts)
	})
	snd.flush()
	cs.finish([]*pageSetDecoder{dec}, []*vecBatchSender{snd}, stats, 1)
	return err
}

// runParallel fans the decode out to degree page-set workers, one private
// decoder and one private vecBatchSender per worker over the shared slab
// channel, mirroring ColumnarScan.runParallel.
func (cs *VecColumnarScan) runParallel(snd *vecBatchSender, opts storage.ScanOptions, degree int) error {
	senders := make([]*vecBatchSender, degree)
	decs := make([]*pageSetDecoder, degree)
	for i := range senders {
		senders[i] = &vecBatchSender{out: snd.out, stop: snd.stop, cancel: snd.cancel, sch: snd.sch, size: snd.size}
		decs[i] = cs.newDecoder()
	}
	stats, err := cs.fr.ParallelScanPageSets(opts, degree, 1, func(w int, set page.PageSet, key page.Key, sealed bool) (bool, error) {
		return decs[w].decodeSet(senders[w], set, key, sealed, opts)
	})
	for _, ws := range senders {
		ws.flush()
	}
	cs.finish(decs, senders, stats, degree)
	return err
}

// finish folds the per-worker counters into Stats, the span, and the
// query counters once the scan thread is done.
func (cs *VecColumnarScan) finish(decs []*pageSetDecoder, senders []*vecBatchSender, stats storage.ScanStats, degree int) {
	var sent, typed, boxed, evaled int64
	for _, s := range senders {
		sent += s.sent
	}
	for _, d := range decs {
		typed += d.typedPages
		boxed += d.boxedPages
		evaled += d.rowsEval
	}
	if cs.cfg.Stats != nil {
		*cs.cfg.Stats = stats
	}
	cs.cfg.Trace.AddScan(stats.RowsRead, stats.PagesRead, stats.PagesSkipped)
	cs.cfg.Trace.AddVecBatches(sent)
	cs.cfg.Trace.AddDecode(typed, boxed)
	if degree > 1 {
		cs.cfg.Trace.AddWorkers(int64(degree))
	}
	if ctx := cs.cfg.Ctx; ctx != nil && ctx.Counters != nil {
		ctx.DecodeTypedPages.Add(typed)
		ctx.DecodeBoxedPages.Add(boxed)
		// Rows the decode-time predicate evaluated are filter work,
		// metered exactly as the downstream VecFilter would have.
		ctx.RowsProcessed.Add(evaled)
	}
}

func (cs *VecColumnarScan) newDecoder() *pageSetDecoder {
	d := &pageSetDecoder{cs: cs}
	if cs.pushdown {
		// Each worker compiles its own node: compiled nodes carry
		// per-evaluation scratch and must not be shared across goroutines.
		d.node = compileBool(cs.cfg.Pred, cs.vecScanFeed.sch)
	}
	return d
}

// pageSetDecoder turns pinned page sets into typed batch columns for one
// scan worker: full typed decode without a predicate, decode-time kernel
// evaluation plus selection-vector late materialization with one. All
// scratch is single-threaded — one decoder per worker.
type pageSetDecoder struct {
	cs      *VecColumnarScan
	node    boolNode  // nil without pushdown
	eval    vec.Batch // scratch: predicate columns decoded per page set
	sel     []int32
	scratch types.Row
	// typedPages/boxedPages count per-page decode outcomes; rowsEval counts
	// rows the pushed-down predicate evaluated.
	typedPages, boxedPages, rowsEval int64
}

// decodeSet decodes one pinned page set into the sender's building batch,
// evaluating the pushed-down predicate during decode when the scan has
// one. Returns false to stop the scan (consumer gone or query killed).
func (d *pageSetDecoder) decodeSet(snd *vecBatchSender, set page.PageSet, key page.Key, sealed bool, opts storage.ScanOptions) (bool, error) {
	nrows := set.NumRows()
	if nrows == 0 {
		return true, nil
	}
	b := snd.building()
	if d.node == nil {
		// No pushdown: every column decodes typed, straight into the
		// building batch.
		for ci := range set.Pages {
			if err := d.decodeFull(set.Pages[ci], &b.Cols[ci]); err != nil {
				return false, err
			}
		}
		b.N += nrows
		return snd.maybeFlush(), nil
	}
	// Decode-time predicate pushdown: decode the predicate's columns into
	// the eval scratch batch (string columns intern into the building
	// batch's dictionary so surviving codes transfer without translation),
	// run the kernel, then materialize only the selected positions.
	if d.eval.Cols == nil {
		d.eval.Sch = d.cs.vecScanFeed.sch
		d.eval.Cols = make([]vec.Col, len(d.cs.predCols))
	}
	for ci := range set.Pages {
		if !d.cs.predCols[ci] {
			continue
		}
		if err := d.decodeFull(set.Pages[ci], d.resetEvalCol(ci, b.Cols[ci].Dict)); err != nil {
			return false, err
		}
	}
	d.eval.N = nrows
	d.eval.Sel = nil
	d.rowsEval += int64(nrows)
	sel := d.sel[:0]
	t, null, err := d.node.evalBool(&d.eval, nrows)
	switch {
	case err == nil:
		for k := 0; k < nrows; k++ {
			if t[k] && (null == nil || !null[k]) {
				sel = append(sel, int32(k))
			}
		}
	case errors.Is(err, errVecFallback):
		// The kernel met a layout it cannot handle (e.g. a page demoted to
		// boxed): decode the remaining columns too and evaluate row-wise,
		// preserving exact expression semantics like VecFilter's fallback.
		for ci := range set.Pages {
			if d.cs.predCols[ci] {
				continue
			}
			if err := d.decodeFull(set.Pages[ci], d.resetEvalCol(ci, b.Cols[ci].Dict)); err != nil {
				return false, err
			}
		}
		if d.scratch == nil {
			d.scratch = make(types.Row, len(d.eval.Cols))
		}
		for k := 0; k < nrows; k++ {
			keep, perr := expr.EvalBool(d.cs.cfg.Pred, d.eval.ReadRow(k, d.scratch))
			if perr != nil {
				return false, perr
			}
			if keep {
				sel = append(sel, int32(k))
			}
		}
		d.sel = sel
		if len(sel) == 0 {
			d.recordAbsence(key, sealed, opts)
			return true, nil
		}
		// Everything is decoded already: gather each column through sel.
		for ci := range d.eval.Cols {
			gatherAppend(&b.Cols[ci], &d.eval.Cols[ci], sel)
		}
		b.N += len(sel)
		return snd.maybeFlush(), nil
	default:
		return false, err
	}
	d.sel = sel
	if len(sel) == 0 {
		d.recordAbsence(key, sealed, opts)
		return true, nil
	}
	// Late materialization: predicate columns gather their survivors from
	// the eval scratch; the other columns decode only the selected
	// positions (unselected strings are never even interned).
	for ci := range set.Pages {
		if d.cs.predCols[ci] {
			gatherAppend(&b.Cols[ci], &d.eval.Cols[ci], sel)
		} else if err := d.decodeSel(set.Pages[ci], &b.Cols[ci], sel); err != nil {
			return false, err
		}
	}
	b.N += len(sel)
	return snd.maybeFlush(), nil
}

// recordAbsence records a proven-empty sealed set into the predicate
// cache. Sound only because SkipComplete means the skip conjunction *is*
// the whole predicate, so "no row matched the predicate" is exactly the
// absence the cache stores — the same gate the row scan's absence pass
// uses.
func (d *pageSetDecoder) recordAbsence(key page.Key, sealed bool, opts storage.ScanOptions) {
	if sealed && opts.UseCache && opts.SkipComplete && len(opts.SkipConj) > 0 {
		d.cs.fr.PredCache.Record(key, opts.SkipConj)
	}
}

// resetEvalCol readies one eval scratch column for a page set: schema
// layout restored (a demoted previous set must not leak boxedness into
// this one), slabs truncated, dictionary shared with the building batch's
// column so gathered codes need no translation.
func (d *pageSetDecoder) resetEvalCol(ci int, dict *vec.Dict) *vec.Col {
	c := &d.eval.Cols[ci]
	kind := d.cs.vecScanFeed.sch.Cols[ci].Kind
	c.Kind = kind
	c.Form = vec.FormFor(kind)
	c.I, c.F, c.Codes, c.Vals = c.I[:0], c.F[:0], c.Codes[:0], c.Vals[:0]
	c.Nulls = c.Nulls[:0]
	if c.Form == vec.FormStr && dict == nil {
		// The building column demoted to boxed earlier in the stream; keep
		// a private dictionary for kernel evaluation (the gather boxes).
		if c.Dict == nil {
			c.Dict = vec.NewDict()
		}
	} else {
		c.Dict = dict
	}
	return c
}

// decodeFull decodes a whole column page into c, typed when the column's
// layout has a typed decoder and the page's cells match, boxed DecodeInto
// (with Col.Append's demotion safety net) otherwise.
func (d *pageSetDecoder) decodeFull(pg page.ColumnPage, c *vec.Col) error {
	switch c.Form {
	case vec.FormInt:
		bm := vec.Bitmap{Words: c.Nulls}
		out, err := pg.DecodeInt64s(c.Kind, c.I, &bm)
		if err == nil {
			c.I, c.Nulls = out, bm.Words
			d.typedPages++
			return nil
		}
		if !errors.Is(err, page.ErrKindMismatch) {
			return err
		}
	case vec.FormFloat:
		bm := vec.Bitmap{Words: c.Nulls}
		out, err := pg.DecodeFloat64s(c.F, &bm)
		if err == nil {
			c.F, c.Nulls = out, bm.Words
			d.typedPages++
			return nil
		}
		if !errors.Is(err, page.ErrKindMismatch) {
			return err
		}
	case vec.FormStr:
		bm := vec.Bitmap{Words: c.Nulls}
		out, err := pg.DecodeStrings(c.Dict, c.Codes, &bm)
		if err == nil {
			c.Codes, c.Nulls = out, bm.Words
			d.typedPages++
			return nil
		}
		if !errors.Is(err, page.ErrKindMismatch) {
			return err
		}
	}
	d.boxedPages++
	return pg.DecodeInto(func(v types.Value) bool {
		c.Append(v)
		return true
	})
}

// decodeSel decodes only the selected page-relative positions into c.
func (d *pageSetDecoder) decodeSel(pg page.ColumnPage, c *vec.Col, sel []int32) error {
	switch c.Form {
	case vec.FormInt:
		bm := vec.Bitmap{Words: c.Nulls}
		out, err := pg.DecodeInt64sSel(c.Kind, c.I, &bm, sel)
		if err == nil {
			c.I, c.Nulls = out, bm.Words
			d.typedPages++
			return nil
		}
		if !errors.Is(err, page.ErrKindMismatch) {
			return err
		}
	case vec.FormFloat:
		bm := vec.Bitmap{Words: c.Nulls}
		out, err := pg.DecodeFloat64sSel(c.F, &bm, sel)
		if err == nil {
			c.F, c.Nulls = out, bm.Words
			d.typedPages++
			return nil
		}
		if !errors.Is(err, page.ErrKindMismatch) {
			return err
		}
	case vec.FormStr:
		bm := vec.Bitmap{Words: c.Nulls}
		out, err := pg.DecodeStringsSel(c.Dict, c.Codes, &bm, sel)
		if err == nil {
			c.Codes, c.Nulls = out, bm.Words
			d.typedPages++
			return nil
		}
		if !errors.Is(err, page.ErrKindMismatch) {
			return err
		}
	}
	d.boxedPages++
	si, pos := 0, 0
	return pg.DecodeInto(func(v types.Value) bool {
		if si < len(sel) && int(sel[si]) == pos {
			c.Append(v)
			si++
		}
		pos++
		return si < len(sel)
	})
}

// gatherAppend appends src's values at the selected positions to dst.
// When both columns share a layout (and, for strings, the dictionary),
// payloads copy unboxed; any mismatch boxes through Value/Append, which
// preserves the demotion semantics.
func gatherAppend(dst, src *vec.Col, sel []int32) {
	if dst.Form != src.Form || (src.Form == vec.FormStr && dst.Dict != src.Dict) {
		for _, i := range sel {
			dst.Append(src.Value(int(i)))
		}
		return
	}
	switch src.Form {
	case vec.FormInt:
		for _, i := range sel {
			if src.IsNull(int(i)) {
				dst.AppendNull()
			} else {
				dst.AppendInt(src.I[i])
			}
		}
	case vec.FormFloat:
		for _, i := range sel {
			if src.IsNull(int(i)) {
				dst.AppendNull()
			} else {
				dst.AppendFloat(src.F[i])
			}
		}
	case vec.FormStr:
		for _, i := range sel {
			if src.IsNull(int(i)) {
				dst.AppendNull()
			} else {
				dst.AppendCode(src.Codes[i])
			}
		}
	default:
		for _, i := range sel {
			dst.Append(src.Vals[i])
		}
	}
}
