package exec

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/testutil"
	"repro/internal/types"
)

// vecScanFragment builds a small columnar fragment with every slab form the
// typed decoders handle — ints, dates, floats, dictionary strings — plus
// NULL runs on two columns. Loading seals full page sets; the trailing
// Appends leave rows in the open (unsealed, unpacked) sets so scans cover
// both the sealed and the open decode paths.
func vecScanFragment(t *testing.T) (*storage.ColumnarFragment, []types.Row) {
	t.Helper()
	ns, err := storage.NewNodeStore(storage.NodeConfig{
		NodeID: 0, BaseDir: t.TempDir(), NumDisks: 2,
		PageSize: 1024, BufFrames: 512, BufStripes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ns.Close() })
	sch := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "qty", Kind: types.KindInt},
		types.Column{Name: "price", Kind: types.KindFloat},
		types.Column{Name: "status", Kind: types.KindString},
		types.Column{Name: "ship", Kind: types.KindDate},
	)
	def := &catalog.TableDef{
		Name:     "vscan",
		Schema:   sch,
		Columnar: true,
		Part:     catalog.Partitioning{Kind: catalog.PartHash, Cols: []string{"id"}},
	}
	fr, err := storage.OpenColumnarFragment(ns, def)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int64) types.Row {
		r := types.Row{
			types.NewInt(i),
			types.NewInt(i % 100),
			types.NewFloat(float64(i%997) * 1.5),
			types.NewString(fmt.Sprintf("STATUS-%d", i%6)),
			types.NewDate(10_000 + i%365),
		}
		if i%7 == 0 {
			r[1] = types.Null
		}
		if i%5 == 0 {
			r[2] = types.Null
		}
		return r
	}
	rows := make([]types.Row, 0, 1509)
	for i := int64(0); i < 1500; i++ {
		rows = append(rows, mk(i))
	}
	if _, err := fr.Load(rows); err != nil {
		t.Fatal(err)
	}
	for i := int64(1500); i < 1509; i++ {
		r := mk(i)
		if err := fr.Append(r); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, r)
	}
	return fr, rows
}

func ncol(i int, name string) *expr.Col { return &expr.Col{Index: i, Name: name} }

func and(l, r expr.Expr) *expr.Bin { return &expr.Bin{Op: expr.OpAnd, L: l, R: r} }

// TestVecScanPushdownParity golden-compares the decode-time predicate
// pushdown path against the row-engine ColumnarScan and the VecFilter
// fallback on the same fragment, for predicates that hit every slab kind.
// The compilable predicates must run natively inside the scan (no VecFilter
// wrapper), the non-compilable one must get the wrapper.
func TestVecScanPushdownParity(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	fr, _ := vecScanFragment(t)
	preds := map[string]func() expr.Expr{
		"int-range": func() expr.Expr {
			return and(gt(ncol(1, "qty"), ci(40)), lt(ncol(2, "price"), cf(700)))
		},
		"isnull": func() expr.Expr {
			return &expr.IsNull{E: ncol(2, "price")}
		},
		"notnull-and-date": func() expr.Expr {
			// Date consts don't compile (date arithmetic stays in expr.arith);
			// a date column against an int const takes the mixed numeric kernel.
			return and(&expr.IsNull{E: ncol(1, "qty"), Negate: true},
				gt(ncol(4, "ship"), ci(10_200)))
		},
		"string-eq": func() expr.Expr {
			return &expr.Bin{Op: expr.OpEq, L: ncol(3, "status"), R: cs("STATUS-3")}
		},
	}
	for name, pred := range preds {
		t.Run(name, func(t *testing.T) {
			want, err := Collect(NewColumnarScan(fr, "", ScanConfig{Pred: pred(), Ctx: NewCtx("", 0)}))
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("baseline predicate selected nothing — test is vacuous")
			}

			ctx := NewCtx("", 0)
			op := NewVecColumnarScan(fr, "", ScanConfig{Pred: pred(), Ctx: ctx})
			if _, ok := op.(*VecColumnarScan); !ok {
				t.Fatalf("compilable predicate must push down into the scan, got %T", op)
			}
			got, err := Collect(FromVec(op))
			if err != nil {
				t.Fatal(err)
			}
			assertSameRows(t, got, want)
			if typed := ctx.DecodeTypedPages.Load(); typed == 0 {
				t.Error("pushdown scan decoded no typed pages")
			}
			if boxed := ctx.DecodeBoxedPages.Load(); boxed != 0 {
				t.Errorf("pushdown scan fell back to boxed decode on %d pages", boxed)
			}

			// Same predicate applied above an unfiltered vector scan: the
			// late-materialized selection must agree with post-hoc filtering.
			fctx := NewCtx("", 0)
			wrapped := NewVecFilter(fctx, NewVecColumnarScan(fr, "", ScanConfig{Ctx: fctx}), pred())
			got2, err := Collect(FromVec(wrapped))
			if err != nil {
				t.Fatal(err)
			}
			assertSameRows(t, got2, want)
		})
	}

	// LIKE has no vector kernel: the constructor must hand back a VecFilter
	// wrapper, and the result must still match the row engine.
	like := func() expr.Expr {
		return &expr.Like{E: ncol(3, "status"), Pattern: cs("%-4")}
	}
	want, err := Collect(NewColumnarScan(fr, "", ScanConfig{Pred: like(), Ctx: NewCtx("", 0)}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx("", 0)
	op := NewVecColumnarScan(fr, "", ScanConfig{Pred: like(), Ctx: ctx})
	if _, ok := op.(*VecFilter); !ok {
		t.Fatalf("non-compilable predicate must wrap in VecFilter, got %T", op)
	}
	got, err := Collect(FromVec(op))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, got, want)
}

// TestVecScanParallelParity runs the pushdown scan serially and with a
// 4-worker morsel-parallel decode and demands identical row multisets and
// a zero boxed-page count on both.
func TestVecScanParallelParity(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	fr, _ := vecScanFragment(t)
	pred := func() expr.Expr {
		return and(gt(ncol(1, "qty"), ci(20)), lt(ncol(1, "qty"), ci(80)))
	}
	run := func(parallel, batchRows int) []types.Row {
		ctx := NewCtx("", 0)
		ctx.SetParallelBudget(parallel)
		ctx.BatchRows = batchRows
		cfg := ScanConfig{Pred: pred(), BatchRows: batchRows, Parallel: parallel, Ctx: ctx}
		op := NewVecColumnarScan(fr, "", cfg)
		if _, ok := op.(*VecColumnarScan); !ok {
			t.Fatalf("predicate must push down, got %T", op)
		}
		out, err := Collect(FromVec(op))
		if err != nil {
			t.Fatal(err)
		}
		if boxed := ctx.DecodeBoxedPages.Load(); boxed != 0 {
			t.Errorf("parallel=%d: %d boxed page decodes", parallel, boxed)
		}
		return out
	}
	want := run(1, 256)
	if len(want) == 0 {
		t.Fatal("predicate selected nothing — test is vacuous")
	}
	for _, batch := range []int{1, 64, 1024} {
		got := run(4, batch)
		assertSameRows(t, got, want)
	}
}

// TestVecScanNoPredFullDecode checks the predicate-free path: every row
// comes back exactly once, typed, across serial and parallel scans.
func TestVecScanNoPredFullDecode(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	fr, rows := vecScanFragment(t)
	for _, parallel := range []int{1, 4} {
		ctx := NewCtx("", 0)
		ctx.SetParallelBudget(parallel)
		got, err := Collect(FromVec(NewVecColumnarScan(fr, "", ScanConfig{Parallel: parallel, Ctx: ctx})))
		if err != nil {
			t.Fatal(err)
		}
		assertSameRows(t, got, rows)
		if boxed := ctx.DecodeBoxedPages.Load(); boxed != 0 {
			t.Errorf("parallel=%d: %d boxed page decodes", parallel, boxed)
		}
	}
}

// TestVecScanAbsenceRecording scans with a complete skip-expressible
// predicate that matches nothing: the first pushdown scan must feed the
// predicate cache (empty selections recorded at decode time), so a repeat
// scan skips page sets without touching them.
func TestVecScanAbsenceRecording(t *testing.T) {
	testutil.AssertNoGoroutineLeak(t)
	fr, _ := vecScanFragment(t)
	pred := func() expr.Expr { return gt(ncol(1, "qty"), ci(1_000_000)) }
	scan := func() storage.ScanStats {
		var stats storage.ScanStats
		ctx := NewCtx("", 0)
		cfg := ScanConfig{Pred: pred(), UseSkipCache: true, Stats: &stats, Ctx: ctx}
		op := NewVecColumnarScan(fr, "", cfg)
		if _, ok := op.(*VecColumnarScan); !ok {
			t.Fatalf("predicate must push down, got %T", op)
		}
		out, err := Collect(FromVec(op))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("impossible predicate returned %d rows", len(out))
		}
		return stats
	}
	first := scan()
	if first.PagesRead == 0 {
		t.Fatal("first scan read nothing")
	}
	second := scan()
	if second.PagesSkipped == 0 {
		t.Fatalf("repeat scan skipped nothing (first read %d pages)", first.PagesRead)
	}
}
