package exec

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/types"
)

// JoinType selects join semantics.
type JoinType uint8

// Join types. Semi and Anti implement decorrelated EXISTS / NOT EXISTS and
// IN subqueries; the paper's engine skips outer joins (its TPC-H run omits
// the one outer-join query), so we do too.
const (
	JoinInner JoinType = iota + 1
	JoinSemi
	JoinAnti
)

// String names the join type.
func (t JoinType) String() string {
	switch t {
	case JoinInner:
		return "INNER"
	case JoinSemi:
		return "SEMI"
	case JoinAnti:
		return "ANTI"
	default:
		return "?"
	}
}

// HashJoin joins Build (right) into Probe (left) on equality of the key
// columns, with an optional residual predicate evaluated over the
// concatenated row. The build side constructs a Bloom filter over its keys
// that cheap-rejects probe rows (used by the optimizer to cut shuffle
// traffic, per Section IV). Probing runs with Parallel worker goroutines —
// the paper's intra-operator parallelism ("multiple threads reading records
// from its input, each simultaneously probing the hash table").
//
// When the build side exceeds the memory budget, the join degrades to a
// Grace hash join: both sides are partitioned to spill files by key hash
// and each partition pair is joined in memory.
type HashJoin struct {
	Probe     Operator
	Build     Operator
	ProbeKeys []expr.Expr
	BuildKeys []expr.Expr
	Residual  expr.Expr // over probe ++ build columns; may be nil
	Type      JoinType
	Parallel  int
	// Trace, when non-nil, records the granted probe worker count.
	Trace *obs.Span
	ctx   *Ctx

	out      types.Schema
	results  chan []types.Row
	errCh    chan error
	err      error
	prepared bool
	done     bool
	cur      []types.Row
	pos      int

	stop     chan struct{} // closed by Close; unblocks result emission
	stopOnce *sync.Once
}

// errJoinStopped aborts probe emission after Close; it never reaches
// callers (an abandoned stream has no consumer to report to).
var errJoinStopped = errors.New("exec: hash join closed")

// NewHashJoin builds a hash join.
func NewHashJoin(ctx *Ctx, probe, build Operator, probeKeys, buildKeys []expr.Expr, jt JoinType, residual expr.Expr, parallel int) *HashJoin {
	if parallel < 1 {
		parallel = 1
	}
	h := &HashJoin{
		Probe: probe, Build: build,
		ProbeKeys: probeKeys, BuildKeys: buildKeys,
		Residual: residual, Type: jt, Parallel: parallel, ctx: ctx,
	}
	switch jt {
	case JoinInner:
		h.out = probe.Schema().Concat(build.Schema())
	default:
		h.out = probe.Schema()
	}
	return h
}

// Schema implements Operator.
func (h *HashJoin) Schema() types.Schema { return h.out }

// Open implements Operator.
func (h *HashJoin) Open() error {
	h.results, h.errCh, h.err, h.prepared, h.done = nil, nil, nil, false, false
	h.cur, h.pos = nil, 0
	h.stop = make(chan struct{})
	h.stopOnce = new(sync.Once)
	if err := h.Probe.Open(); err != nil {
		return err
	}
	return h.Build.Open()
}

// prepare drains the build side; if it fits in memory, streams the probe
// side through worker goroutines; otherwise partitions both sides.
func (h *HashJoin) prepare() error {
	budget := 0
	if h.ctx != nil {
		budget = h.ctx.MemRows
	}
	table := map[uint64][]types.Row{}
	bloom := NewBloom(1 << 16)
	overflow := false
	buildCount := 0
	var buildSpill *spillWriter

	for {
		r, ok, err := h.Build.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if h.ctx != nil {
			h.ctx.RowsProcessed.Add(1)
		}
		keyRow, err := EvalKeys(h.BuildKeys, r)
		if err != nil {
			return err
		}
		key := types.HashRow(keyRow, allOffsets(len(keyRow)))
		bloom.Add(key)
		if !overflow && budget > 0 && buildCount >= budget {
			overflow = true
			var err error
			buildSpill, err = newSpillWriter(h.ctx, "join-build-*")
			if err != nil {
				return err
			}
			// Move the in-memory table to the spill file too: Grace mode
			// re-partitions everything uniformly.
			for _, rows := range table {
				for _, br := range rows {
					if err := buildSpill.write(br); err != nil {
						return err
					}
				}
			}
			table = nil
		}
		if overflow {
			if err := buildSpill.write(r); err != nil {
				return err
			}
		} else {
			table[key] = append(table[key], r)
			if h.ctx != nil {
				h.ctx.addState(int64(types.RowEncodedSize(r)))
			}
		}
		buildCount++
	}

	if !overflow {
		return h.streamProbe(table, bloom)
	}
	return h.graceJoin(buildSpill, bloom)
}

// streamProbe launches probe workers against the shared read-only table.
// The degree of parallelism adapts to the node's current load through the
// context's parallel budget (Section I: workers reduce the degree of
// parallelism for query operators when resources are scarce). Probe rows
// and join results both cross goroutine boundaries in slabs; each worker
// accumulates results in its own emitter so nothing is shared.
func (h *HashJoin) streamProbe(table map[uint64][]types.Row, bloom *Bloom) error {
	degree := h.Parallel
	if h.ctx != nil {
		degree = h.ctx.AcquireWorkers(h.Parallel)
	}
	h.Trace.AddWorkers(int64(degree))
	batch := h.ctx.batchRows()
	h.results = make(chan []types.Row, 16)
	h.errCh = make(chan error, degree+1)
	probeBatches := make(chan []types.Row, 16)
	stop := make(chan struct{})
	var stopOnce sync.Once

	var wg sync.WaitGroup
	for w := 0; w < degree; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			em := &joinEmitter{h: h, size: batch}
			for b := range probeBatches {
				for _, r := range b {
					if err := h.probeOne(r, table, bloom, em); err != nil {
						if err != errJoinStopped {
							h.errCh <- err
						}
						stopOnce.Do(func() { close(stop) })
						return
					}
				}
			}
			if err := em.flush(); err != nil && err != errJoinStopped {
				h.errCh <- err
			}
		}()
	}
	// Feeder: the probe input is a single iterator, so one goroutine reads
	// it and fans slabs out to the probe workers. Slabs are copied before
	// the send because the input may reuse its slab, while the workers hold
	// theirs asynchronously. The feeder aborts when a worker reports an
	// error so nothing blocks on a full channel.
	go func() {
		defer close(probeBatches)
		bin := ToBatch(h.Probe, batch)
		for {
			b, ok, err := bin.NextBatch()
			if err != nil {
				h.errCh <- err
				return
			}
			if !ok {
				return
			}
			if h.ctx != nil {
				h.ctx.RowsProcessed.Add(int64(len(b)))
			}
			cp := make([]types.Row, len(b))
			copy(cp, b)
			select {
			case probeBatches <- cp:
			case <-stop:
				return
			case <-h.stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		if h.ctx != nil {
			h.ctx.ReleaseWorkers(degree)
		}
		close(h.results)
	}()
	return nil
}

// joinEmitter accumulates one worker's result rows into a slab and ships
// the slab when full. Each worker owns its emitter, so emission is
// lock-free; the channel select costs once per slab instead of per row.
type joinEmitter struct {
	h    *HashJoin
	slab []types.Row
	size int
}

// emit buffers one result row, flushing when the slab is full.
func (e *joinEmitter) emit(r types.Row) error {
	if e.slab == nil {
		e.slab = make([]types.Row, 0, e.size)
	}
	e.slab = append(e.slab, r)
	if len(e.slab) >= e.size {
		return e.flush()
	}
	return nil
}

// flush ships the slab unless the join has been closed, so probe workers
// cannot block forever on a stream nobody is draining. A fresh slab is
// allocated afterwards — the consumer owns shipped slabs.
func (e *joinEmitter) flush() error {
	if len(e.slab) == 0 {
		return nil
	}
	select {
	case e.h.results <- e.slab:
		e.slab = make([]types.Row, 0, e.size)
		return nil
	case <-e.h.stop:
		return errJoinStopped
	}
}

// probeOne emits the join results for one probe row.
func (h *HashJoin) probeOne(r types.Row, table map[uint64][]types.Row, bloom *Bloom, out *joinEmitter) error {
	keyRow, err := EvalKeys(h.ProbeKeys, r)
	if err != nil {
		return err
	}
	key := types.HashRow(keyRow, allOffsets(len(keyRow)))
	matched := false
	if bloom.MayContain(key) {
		for _, br := range table[key] {
			ok, err := h.keysEqual(r, br)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			joined := r.Concat(br)
			if h.Residual != nil {
				ok, err := expr.EvalBool(h.Residual, joined)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			matched = true
			if h.Type == JoinInner {
				if err := out.emit(joined); err != nil {
					return err
				}
			} else if h.Type == JoinSemi {
				break
			} else if h.Type == JoinAnti {
				break
			}
		}
	}
	if h.Type == JoinSemi && matched {
		return out.emit(r)
	}
	if h.Type == JoinAnti && !matched {
		return out.emit(r)
	}
	return nil
}

// keysEqual compares the evaluated key expressions of a probe/build pair.
// NULL keys never match (SQL join semantics).
func (h *HashJoin) keysEqual(probe, build types.Row) (bool, error) {
	for i := range h.ProbeKeys {
		av, err := h.ProbeKeys[i].Eval(probe)
		if err != nil {
			return false, err
		}
		bv, err := h.BuildKeys[i].Eval(build)
		if err != nil {
			return false, err
		}
		if av.IsNull() || bv.IsNull() {
			return false, nil
		}
		if types.Compare(av, bv) != 0 {
			return false, nil
		}
	}
	return true, nil
}

// EvalKeys evaluates key expressions over a row into a key row.
func EvalKeys(keys []expr.Expr, r types.Row) (types.Row, error) {
	out := make(types.Row, len(keys))
	for i, k := range keys {
		v, err := k.Eval(r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// allOffsets returns [0, 1, ..., n-1].
func allOffsets(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// HashKeys evaluates and hashes key expressions for partitioning.
func HashKeys(keys []expr.Expr, r types.Row) (uint64, error) {
	kr, err := EvalKeys(keys, r)
	if err != nil {
		return 0, err
	}
	return types.HashRow(kr, allOffsets(len(kr))), nil
}

// ColRefs builds plain column-reference key expressions.
func ColRefs(idx ...int) []expr.Expr {
	out := make([]expr.Expr, len(idx))
	for i, x := range idx {
		out[i] = &expr.Col{Index: x}
	}
	return out
}

// graceJoin partitions both sides by key hash into fanout spill partitions
// and joins each pair in memory.
func (h *HashJoin) graceJoin(buildSpill *spillWriter, bloom *Bloom) error {
	fanout := h.ctx.graceFanout()
	buildReader, err := buildSpill.finish()
	if err != nil {
		return err
	}
	buildParts := make([]*spillWriter, fanout)
	probeParts := make([]*spillWriter, fanout)
	for i := range buildParts {
		if buildParts[i], err = newSpillWriter(h.ctx, "join-bpart-*"); err != nil {
			return err
		}
		if probeParts[i], err = newSpillWriter(h.ctx, "join-ppart-*"); err != nil {
			return err
		}
	}
	for {
		r, ok, err := buildReader.next()
		if err != nil {
			buildReader.close()
			return err
		}
		if !ok {
			break
		}
		hk, err := HashKeys(h.BuildKeys, r)
		if err != nil {
			buildReader.close()
			return err
		}
		p := hk % uint64(fanout)
		if err := buildParts[p].write(r); err != nil {
			buildReader.close()
			return err
		}
	}
	buildReader.close()
	for {
		r, ok, err := h.Probe.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		key, err := HashKeys(h.ProbeKeys, r)
		if err != nil {
			return err
		}
		// Bloom filter rejection still applies in Grace mode — except for
		// anti joins, where unmatched rows must be OUTPUT, not dropped.
		if !bloom.MayContain(key) && h.Type != JoinAnti {
			continue
		}
		if err := probeParts[key%uint64(fanout)].write(r); err != nil {
			return err
		}
	}

	h.results = make(chan []types.Row, 16)
	h.errCh = make(chan error, 1)
	go func() {
		defer close(h.results)
		em := &joinEmitter{h: h, size: h.ctx.batchRows()}
		fail := func(err error) {
			if err != errJoinStopped {
				select {
				case h.errCh <- err:
				case <-h.stop:
				}
			}
		}
		for p := 0; p < fanout; p++ {
			if err := h.joinPartition(buildParts[p], probeParts[p], em); err != nil {
				fail(err)
				return
			}
		}
		if err := em.flush(); err != nil {
			fail(err)
		}
	}()
	return nil
}

func (h *HashJoin) joinPartition(bw, pw *spillWriter, em *joinEmitter) error {
	br, err := bw.finish()
	if err != nil {
		return err
	}
	table := map[uint64][]types.Row{}
	for {
		r, ok, err := br.next()
		if err != nil {
			br.close()
			return err
		}
		if !ok {
			break
		}
		hk, err := HashKeys(h.BuildKeys, r)
		if err != nil {
			br.close()
			return err
		}
		table[hk] = append(table[hk], r)
	}
	br.close()
	pr, err := pw.finish()
	if err != nil {
		return err
	}
	defer pr.close()
	passAll := NewBloom(8) // always-maybe filter for partition probing
	passAll.SetAll()
	for {
		r, ok, err := pr.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := h.probeOne(r, table, passAll, em); err != nil {
			return err
		}
	}
}

// Next implements Operator, iterating the current result slab.
func (h *HashJoin) Next() (types.Row, bool, error) {
	for h.pos >= len(h.cur) {
		b, ok, err := h.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		//lint:ignore slabown row cursor: the join owns its result slab and drains cur before the next NextBatch
		h.cur, h.pos = b, 0
	}
	r := h.cur[h.pos]
	h.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator: receive the next result slab from
// the probe workers. Workers allocate a fresh slab per flush, so the
// received slab is the caller's to mutate.
func (h *HashJoin) NextBatch() ([]types.Row, bool, error) {
	if !h.prepared {
		if err := h.prepare(); err != nil {
			return nil, false, err
		}
		h.prepared = true
	}
	if h.err != nil {
		return nil, false, h.err
	}
	select {
	case err := <-h.errCh:
		h.err = err
		return nil, false, err
	case b, ok := <-h.results:
		if !ok {
			// Check for a late error.
			select {
			case err := <-h.errCh:
				h.err = err
				return nil, false, err
			default:
			}
			return nil, false, nil
		}
		return b, true, nil
	}
}

// Close implements Operator. Closing the stop channel unblocks workers
// parked on result emission, so an abandoned join cannot leak goroutines.
func (h *HashJoin) Close() error {
	if h.stopOnce != nil {
		h.stopOnce.Do(func() { close(h.stop) })
	}
	err1 := h.Probe.Close()
	err2 := h.Build.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// NestedLoopJoin evaluates an arbitrary join condition; used when no
// equality conjunct exists (the paper uses hash joins whenever at least one
// equality conjunct is present, so this is the fallback).
type NestedLoopJoin struct {
	Left, Right Operator
	Cond        expr.Expr // over left ++ right columns; may be nil (cross product)
	Type        JoinType
	ctx         *Ctx

	rightRows []types.Row
	out       types.Schema
	cur       types.Row
	rpos      int
	matched   bool
	prepared  bool
}

// NewNestedLoopJoin builds the fallback join.
func NewNestedLoopJoin(ctx *Ctx, left, right Operator, cond expr.Expr, jt JoinType) *NestedLoopJoin {
	j := &NestedLoopJoin{Left: left, Right: right, Cond: cond, Type: jt, ctx: ctx}
	if jt == JoinInner {
		j.out = left.Schema().Concat(right.Schema())
	} else {
		j.out = left.Schema()
	}
	return j
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() types.Schema { return j.out }

// Open implements Operator.
func (j *NestedLoopJoin) Open() error {
	j.rightRows, j.cur, j.rpos, j.matched, j.prepared = nil, nil, 0, false, false
	if err := j.Left.Open(); err != nil {
		return err
	}
	return j.Right.Open()
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (types.Row, bool, error) {
	if !j.prepared {
		var err error
		j.rightRows, err = drain(j.Right, j.ctx)
		if err != nil {
			return nil, false, err
		}
		j.prepared = true
	}
	for {
		if j.cur == nil {
			r, ok, err := j.Left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur, j.rpos, j.matched = r, 0, false
		}
		for j.rpos < len(j.rightRows) {
			rr := j.rightRows[j.rpos]
			j.rpos++
			joined := j.cur.Concat(rr)
			if j.Cond != nil {
				ok, err := expr.EvalBool(j.Cond, joined)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					continue
				}
			}
			j.matched = true
			switch j.Type {
			case JoinInner:
				return joined, true, nil
			case JoinSemi:
				r := j.cur
				j.cur = nil
				return r, true, nil
			case JoinAnti:
				j.rpos = len(j.rightRows)
			}
		}
		// Exhausted right side for this left row.
		if j.Type == JoinAnti && !j.matched {
			r := j.cur
			j.cur = nil
			return r, true, nil
		}
		j.cur = nil
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func drain(op Operator, ctx *Ctx) ([]types.Row, error) {
	var out []types.Row
	for {
		r, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		if ctx != nil {
			ctx.RowsProcessed.Add(1)
		}
		out = append(out, r)
	}
}

// Bloom is a fixed-size Bloom filter over 64-bit key hashes with 3 probes.
type Bloom struct {
	bits []uint64
	mask uint64
}

// NewBloom creates a filter with at least nBits bits (rounded to a power
// of two).
func NewBloom(nBits int) *Bloom {
	size := 64
	for size < nBits {
		size <<= 1
	}
	return &Bloom{bits: make([]uint64, size/64), mask: uint64(size - 1)}
}

func (b *Bloom) positions(h uint64) [3]uint64 {
	h2 := h * 0x9E3779B97F4A7C15
	h3 := (h ^ h2) * 0xC2B2AE3D27D4EB4F
	return [3]uint64{h & b.mask, h2 & b.mask, h3 & b.mask}
}

// Add inserts a key hash.
func (b *Bloom) Add(h uint64) {
	for _, p := range b.positions(h) {
		b.bits[p/64] |= 1 << (p % 64)
	}
}

// MayContain reports whether the key hash may be present.
func (b *Bloom) MayContain(h uint64) bool {
	for _, p := range b.positions(h) {
		if b.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// SetAll saturates the filter (always-maybe).
func (b *Bloom) SetAll() {
	for i := range b.bits {
		b.bits[i] = ^uint64(0)
	}
}

// Encode serializes the filter for shipping across the network.
func (b *Bloom) Encode() []byte {
	out := make([]byte, 8*len(b.bits))
	for i, w := range b.bits {
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(w >> (8 * j))
		}
	}
	return out
}

// DecodeBloom restores a filter from Encode output.
func DecodeBloom(data []byte) (*Bloom, error) {
	if len(data) == 0 || len(data)%8 != 0 {
		return nil, fmt.Errorf("exec: bad bloom encoding length %d", len(data))
	}
	b := &Bloom{bits: make([]uint64, len(data)/8), mask: uint64(len(data)*8 - 1)}
	for i := range b.bits {
		var w uint64
		for j := 0; j < 8; j++ {
			w |= uint64(data[i*8+j]) << (8 * j)
		}
		b.bits[i] = w
	}
	return b, nil
}
