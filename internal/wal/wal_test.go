package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/types"
)

// memStore is a tiny in-memory page store for recovery tests.
type memStore struct {
	mu       sync.Mutex
	pages    map[page.Key][]byte
	pageSize int
}

func newMemStore(size int) *memStore {
	return &memStore{pages: map[page.Key][]byte{}, pageSize: size}
}

func (s *memStore) ReadPage(f page.FileID, n uint32) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.pages[page.Key{File: f, Page: n}]; ok {
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	}
	return make([]byte, s.pageSize), nil
}

func (s *memStore) WritePage(f page.FileID, n uint32, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := make([]byte, len(buf))
	copy(b, buf)
	s.pages[page.Key{File: f, Page: n}] = b
	return nil
}

func (s *memStore) PageSize() int { return s.pageSize }

func openLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

// mustFetch pins key, failing the test on error.
func mustFetch(t *testing.T, m *buffer.Manager, k page.Key) *buffer.Frame {
	t.Helper()
	f, err := m.Fetch(k)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// mustRowPage interprets buf as a row page, failing the test on error.
func mustRowPage(t *testing.T, buf []byte) page.RowPage {
	t.Helper()
	rp, err := page.AsRowPage(buf)
	if err != nil {
		t.Fatal(err)
	}
	return rp
}

// mustGet reads a slot, failing the test on a decode error.
func mustGet(t *testing.T, rp page.RowPage, slot int) (types.Row, bool) {
	t.Helper()
	r, ok, err := rp.Get(slot)
	if err != nil {
		t.Fatal(err)
	}
	return r, ok
}

func TestAppendFlushScan(t *testing.T) {
	l, _ := openLog(t)
	defer l.Close()
	lsn1 := l.Append(&Record{Type: RecBegin, TxID: 1})
	lsn2 := l.Append(&Record{Type: RecInsert, TxID: 1, PrevLSN: lsn1,
		Page: page.Key{File: 3, Page: 9}, Slot: 2, Row: []byte("rowdata")})
	l.Append(&Record{Type: RecCommit, TxID: 1, PrevLSN: lsn2})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	var seen []RecType
	err := l.Scan(0, func(r *Record) bool { seen = append(seen, r.Type); return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != RecBegin || seen[1] != RecInsert || seen[2] != RecCommit {
		t.Fatalf("scan types = %v", seen)
	}
	r, err := l.ReadAt(lsn2)
	if err != nil {
		t.Fatal(err)
	}
	if r.TxID != 1 || r.Slot != 2 || string(r.Row) != "rowdata" || r.Page.Page != 9 {
		t.Errorf("ReadAt = %+v", r)
	}
}

func TestReopenFindsEnd(t *testing.T) {
	l, path := openLog(t)
	l.Append(&Record{Type: RecBegin, TxID: 5})
	lsnLast := l.Append(&Record{Type: RecCommit, TxID: 5})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	next := l2.Append(&Record{Type: RecBegin, TxID: 6})
	if next <= lsnLast {
		t.Errorf("reopened log reused LSN space: %d <= %d", next, lsnLast)
	}
	count := 0
	if err := l2.Scan(0, func(r *Record) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("records after reopen = %d, want 3", count)
	}
}

func TestTornTailTruncated(t *testing.T) {
	l, path := openLog(t)
	l.Append(&Record{Type: RecBegin, TxID: 1})
	l.Append(&Record{Type: RecCommit, TxID: 1})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage simulating a torn write.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	count := 0
	if err := l2.Scan(0, func(r *Record) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("records after torn tail = %d, want 2", count)
	}
}

// logTx appends a begin + n inserts into consecutive slots of one page,
// applying them to the buffer as a live transaction would. Returns lastLSN.
func logTx(t *testing.T, l *Log, m *buffer.Manager, tx uint64, key page.Key, rows []types.Row) uint64 {
	t.Helper()
	prev := l.Append(&Record{Type: RecBegin, TxID: tx})
	f, err := m.Fetch(key)
	if err != nil {
		t.Fatal(err)
	}
	if page.TypeOf(f.Buf) == page.TypeFree {
		page.InitRowPage(f.Buf)
	}
	rp, err := page.AsRowPage(f.Buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		enc := types.AppendRow(nil, r)
		slot, ok := rp.InsertEncoded(enc)
		if !ok {
			t.Fatal("page full in test")
		}
		prev = l.Append(&Record{Type: RecInsert, TxID: tx, PrevLSN: prev, Page: key, Slot: uint16(slot), Row: enc})
		page.SetLSN(f.Buf, prev)
	}
	m.Unpin(f, true)
	return prev
}

func TestRecoveryRedoCommitted(t *testing.T) {
	st := newMemStore(4096)
	l, _ := openLog(t)
	defer l.Close()
	m := buffer.New(st, 16, 2, buffer.WithFlushHook(l.FlushUpTo))

	key := page.Key{File: 1, Page: 0}
	last := logTx(t, l, m, 1, key, []types.Row{
		{types.NewInt(10)}, {types.NewInt(20)},
	})
	l.Append(&Record{Type: RecCommit, TxID: 1, PrevLSN: last})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash before the dirty page reaches the store: new buffer manager on
	// the same (empty) store.
	m2 := buffer.New(st, 16, 2, buffer.WithFlushHook(l.FlushUpTo))
	res, err := Recover(l, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.RedoneRecords != 2 {
		t.Errorf("redone = %d, want 2", res.RedoneRecords)
	}
	if len(res.LoserTxns) != 0 {
		t.Errorf("losers = %v", res.LoserTxns)
	}
	f := mustFetch(t, m2, key)
	rp := mustRowPage(t, f.Buf)
	if rp.LiveRows() != 2 {
		t.Errorf("live rows after redo = %d, want 2", rp.LiveRows())
	}
	m2.Unpin(f, false)
}

func TestRecoveryUndoLoser(t *testing.T) {
	st := newMemStore(4096)
	l, _ := openLog(t)
	defer l.Close()
	m := buffer.New(st, 16, 2, buffer.WithFlushHook(l.FlushUpTo))

	key := page.Key{File: 1, Page: 0}
	// Committed transaction with one row.
	last := logTx(t, l, m, 1, key, []types.Row{{types.NewInt(1)}})
	l.Append(&Record{Type: RecCommit, TxID: 1, PrevLSN: last})
	// Loser transaction with two rows, no commit.
	logTx(t, l, m, 2, key, []types.Row{{types.NewInt(2)}, {types.NewInt(3)}})
	// Flush everything (page may hit disk before the crash, per steal).
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	m2 := buffer.New(st, 16, 2, buffer.WithFlushHook(l.FlushUpTo))
	res, err := Recover(l, m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LoserTxns) != 1 || res.LoserTxns[0] != 2 {
		t.Fatalf("losers = %v, want [2]", res.LoserTxns)
	}
	if res.UndoneRecords != 2 {
		t.Errorf("undone = %d, want 2", res.UndoneRecords)
	}
	f := mustFetch(t, m2, key)
	rp := mustRowPage(t, f.Buf)
	if rp.LiveRows() != 1 {
		t.Errorf("live rows after undo = %d, want 1", rp.LiveRows())
	}
	r, ok := mustGet(t, rp, 0)
	if !ok || r[0].Int() != 1 {
		t.Errorf("surviving row = %v ok=%v", r, ok)
	}
	m2.Unpin(f, false)

	// Recovery must be idempotent: running it again changes nothing.
	res2, err := Recover(l, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.UndoneRecords != 0 || len(res2.LoserTxns) != 0 {
		t.Errorf("second recovery did work: %+v", res2)
	}
}

func TestRecoveryUndoDelete(t *testing.T) {
	st := newMemStore(4096)
	l, _ := openLog(t)
	defer l.Close()
	m := buffer.New(st, 16, 2, buffer.WithFlushHook(l.FlushUpTo))
	key := page.Key{File: 1, Page: 0}

	// Tx1 commits a row.
	last := logTx(t, l, m, 1, key, []types.Row{{types.NewString("keepme")}})
	l.Append(&Record{Type: RecCommit, TxID: 1, PrevLSN: last})
	// Tx2 deletes it and crashes.
	f := mustFetch(t, m, key)
	rp := mustRowPage(t, f.Buf)
	enc := append([]byte(nil), rp.GetEncoded(0)...)
	prev := l.Append(&Record{Type: RecBegin, TxID: 2})
	rp.Delete(0)
	prev = l.Append(&Record{Type: RecDelete, TxID: 2, PrevLSN: prev, Page: key, Slot: 0, Row: enc})
	page.SetLSN(f.Buf, prev)
	m.Unpin(f, true)
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}

	m2 := buffer.New(st, 16, 2, buffer.WithFlushHook(l.FlushUpTo))
	if _, err := Recover(l, m2); err != nil {
		t.Fatal(err)
	}
	f2 := mustFetch(t, m2, key)
	rp2 := mustRowPage(t, f2.Buf)
	r, ok := mustGet(t, rp2, 0)
	if !ok || r[0].Str() != "keepme" {
		t.Errorf("deleted row not restored by undo: %v ok=%v", r, ok)
	}
	m2.Unpin(f2, false)
}

func TestRecoveryInDoubtPrepared(t *testing.T) {
	st := newMemStore(4096)
	l, _ := openLog(t)
	defer l.Close()
	m := buffer.New(st, 16, 2, buffer.WithFlushHook(l.FlushUpTo))
	key := page.Key{File: 1, Page: 0}
	last := logTx(t, l, m, 7, key, []types.Row{{types.NewInt(70)}})
	l.Append(&Record{Type: RecPrepare, TxID: 7, PrevLSN: last, Coordinator: 3})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}

	m2 := buffer.New(st, 16, 2, buffer.WithFlushHook(l.FlushUpTo))
	res, err := Recover(l, m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InDoubt) != 1 || res.InDoubt[0].TxID != 7 || res.InDoubt[0].Coordinator != 3 {
		t.Fatalf("in-doubt = %+v", res.InDoubt)
	}
	// The prepared transaction's effects must still be present (not undone).
	f := mustFetch(t, m2, key)
	rp := mustRowPage(t, f.Buf)
	if rp.LiveRows() != 1 {
		t.Errorf("prepared txn rows = %d, want 1", rp.LiveRows())
	}
	m2.Unpin(f, false)
}

func TestCheckpointShortensAnalysis(t *testing.T) {
	st := newMemStore(4096)
	l, _ := openLog(t)
	defer l.Close()
	m := buffer.New(st, 16, 2, buffer.WithFlushHook(l.FlushUpTo))
	key := page.Key{File: 1, Page: 0}
	last := logTx(t, l, m, 1, key, []types.Row{{types.NewInt(1)}})
	l.Append(&Record{Type: RecCommit, TxID: 1, PrevLSN: last})
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCheckpoint(l, map[uint64]*TxInfo{}, map[page.Key]uint64{}); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint loser.
	logTx(t, l, m, 2, key, []types.Row{{types.NewInt(2)}})
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}

	m2 := buffer.New(st, 16, 2, buffer.WithFlushHook(l.FlushUpTo))
	res, err := Recover(l, m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LoserTxns) != 1 || res.LoserTxns[0] != 2 {
		t.Fatalf("losers = %v", res.LoserTxns)
	}
	f := mustFetch(t, m2, key)
	rp := mustRowPage(t, f.Buf)
	if rp.LiveRows() != 1 {
		t.Errorf("live rows = %d, want 1", rp.LiveRows())
	}
	m2.Unpin(f, false)
}

func TestCheckpointEncodeDecode(t *testing.T) {
	att := map[uint64]*TxInfo{
		3: {LastLSN: 100, Status: TxActive},
		9: {LastLSN: 222, Status: TxPrepared, Coordinator: 5},
	}
	dpt := map[page.Key]uint64{
		{File: 1, Page: 2}: 50,
		{File: 4, Page: 0}: 75,
	}
	att2, dpt2 := decodeCheckpoint(encodeCheckpoint(att, dpt))
	if len(att2) != 2 || att2[9].Coordinator != 5 || att2[9].Status != TxPrepared || att2[3].LastLSN != 100 {
		t.Errorf("att round trip = %+v", att2)
	}
	if len(dpt2) != 2 || dpt2[page.Key{File: 1, Page: 2}] != 50 {
		t.Errorf("dpt round trip = %+v", dpt2)
	}
}

func TestMaxTxIDReported(t *testing.T) {
	l, _ := openLog(t)
	defer l.Close()
	l.Append(&Record{Type: RecBegin, TxID: 41})
	l.Append(&Record{Type: RecCommit, TxID: 41})
	st := newMemStore(1024)
	m := buffer.New(st, 4, 1)
	res, err := Recover(l, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTxID != 41 {
		t.Errorf("MaxTxID = %d", res.MaxTxID)
	}
}

// TestRecoveryQuickProperty: random interleavings of committed and
// uncommitted transactions must recover to exactly the committed set.
func TestRecoveryQuickProperty(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		st := newMemStore(8192)
		path := filepath.Join(t.TempDir(), "wal.log")
		l, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		m := buffer.New(st, 32, 2, buffer.WithFlushHook(l.FlushUpTo))
		key := page.Key{File: 1, Page: uint32(trial % 3)}

		rng := trial*7919 + 13
		committed := map[int64]bool{}
		for tx := uint64(1); tx <= 6; tx++ {
			val := int64(tx * 100)
			last := logTx(t, l, m, tx, key, []types.Row{{types.NewInt(val)}})
			rng = rng*1103515245 + 12345
			if (rng>>16)&1 == 0 {
				l.Append(&Record{Type: RecCommit, TxID: tx, PrevLSN: last})
				committed[val] = true
			}
		}
		// Random crash point: sometimes flush pages, sometimes not.
		if trial%2 == 0 {
			if err := m.FlushAll(); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		m2 := buffer.New(st, 32, 2, buffer.WithFlushHook(l2.FlushUpTo))
		if _, err := Recover(l2, m2); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		f := mustFetch(t, m2, key)
		rp := mustRowPage(t, f.Buf)
		got := map[int64]bool{}
		rp.Scan(func(slot int, r types.Row) bool { got[r[0].Int()] = true; return true })
		m2.Unpin(f, false)
		if len(got) != len(committed) {
			t.Fatalf("trial %d: recovered %v, want %v", trial, got, committed)
		}
		for v := range committed {
			if !got[v] {
				t.Fatalf("trial %d: lost committed %d", trial, v)
			}
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
