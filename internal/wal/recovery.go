package wal

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/page"
)

// PageAccess is the slice of the buffer manager recovery needs.
type PageAccess interface {
	Fetch(k page.Key) (*buffer.Frame, error)
	Unpin(f *buffer.Frame, dirty bool)
}

// TxStatus is a transaction's state in the analysis pass.
type TxStatus uint8

// Transaction states discovered during analysis.
const (
	TxActive TxStatus = iota + 1
	TxPrepared
)

// TxInfo is one active-transaction-table entry.
type TxInfo struct {
	LastLSN     uint64
	Status      TxStatus
	Coordinator int32 // valid when Status == TxPrepared
}

// InDoubt describes a prepared transaction whose global outcome is unknown
// after local recovery; the caller must ask the recorded coordinator (the
// paper's worker-restart protocol) and then call ResolveInDoubt.
type InDoubt struct {
	TxID        uint64
	Coordinator int32
}

// RecoveryResult summarizes a completed recovery.
type RecoveryResult struct {
	RedoneRecords int
	UndoneRecords int
	LoserTxns     []uint64
	InDoubt       []InDoubt
	MaxTxID       uint64
}

// Recover runs ARIES analysis, redo, and undo against the log, applying
// page changes through pa. Prepared transactions are left in place and
// reported as in-doubt.
func Recover(l *Log, pa PageAccess) (*RecoveryResult, error) {
	att, dpt, maxTx, err := analysis(l)
	if err != nil {
		return nil, err
	}
	res := &RecoveryResult{MaxTxID: maxTx}

	redone, err := redo(l, pa, dpt)
	if err != nil {
		return nil, err
	}
	res.RedoneRecords = redone

	// Partition ATT into losers (undo) and in-doubt (leave alone).
	var losers []uint64
	for tx, info := range att {
		if info.Status == TxPrepared {
			res.InDoubt = append(res.InDoubt, InDoubt{TxID: tx, Coordinator: info.Coordinator})
		} else {
			losers = append(losers, tx)
		}
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i] < losers[j] })
	sort.Slice(res.InDoubt, func(i, j int) bool { return res.InDoubt[i].TxID < res.InDoubt[j].TxID })
	res.LoserTxns = losers

	for _, tx := range losers {
		n, err := UndoTransaction(l, pa, tx, att[tx].LastLSN)
		if err != nil {
			return nil, err
		}
		res.UndoneRecords += n
	}
	if err := l.Flush(); err != nil {
		return nil, err
	}
	return res, nil
}

// analysis builds the active transaction table and dirty page table.
func analysis(l *Log) (map[uint64]*TxInfo, map[page.Key]uint64, uint64, error) {
	att := map[uint64]*TxInfo{}
	dpt := map[page.Key]uint64{}
	var maxTx uint64

	start := l.LastCheckpointLSN()
	if start != 0 {
		ckpt, err := l.ReadAt(start)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("wal: read checkpoint: %w", err)
		}
		att, dpt = decodeCheckpoint(ckpt.Checkpoint)
	}
	err := l.Scan(start, func(r *Record) bool {
		if r.TxID > maxTx {
			maxTx = r.TxID
		}
		switch r.Type {
		case RecBegin:
			att[r.TxID] = &TxInfo{LastLSN: r.LSN, Status: TxActive}
		case RecInsert, RecDelete, RecCLR:
			info := att[r.TxID]
			if info == nil {
				info = &TxInfo{Status: TxActive}
				att[r.TxID] = info
			}
			info.LastLSN = r.LSN
			if _, ok := dpt[r.Page]; !ok {
				dpt[r.Page] = r.LSN
			}
		case RecPrepare:
			info := att[r.TxID]
			if info == nil {
				info = &TxInfo{}
				att[r.TxID] = info
			}
			info.LastLSN = r.LSN
			info.Status = TxPrepared
			info.Coordinator = r.Coordinator
		case RecCommit, RecAbort:
			delete(att, r.TxID)
		}
		return true
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return att, dpt, maxTx, nil
}

// redo reapplies logged page operations whose effects may be missing.
func redo(l *Log, pa PageAccess, dpt map[page.Key]uint64) (int, error) {
	if len(dpt) == 0 {
		return 0, nil
	}
	start := ^uint64(0)
	for _, recLSN := range dpt {
		if recLSN < start {
			start = recLSN
		}
	}
	redone := 0
	var redoErr error
	err := l.Scan(start, func(r *Record) bool {
		switch r.Type {
		case RecInsert, RecDelete, RecCLR:
		default:
			return true
		}
		recLSN, inDPT := dpt[r.Page]
		if !inDPT || r.LSN < recLSN {
			return true
		}
		applied, err := applyRedo(pa, r)
		if err != nil {
			redoErr = err
			return false
		}
		if applied {
			redone++
		}
		return true
	})
	if err != nil {
		return redone, err
	}
	return redone, redoErr
}

// applyRedo applies one record if the page LSN shows it is missing.
func applyRedo(pa PageAccess, r *Record) (bool, error) {
	f, err := pa.Fetch(r.Page)
	if err != nil {
		return false, fmt.Errorf("wal: redo fetch %v: %w", r.Page, err)
	}
	if page.LSN(f.Buf) >= r.LSN {
		pa.Unpin(f, false)
		return false, nil
	}
	if err := applyAction(f.Buf, r); err != nil {
		pa.Unpin(f, false)
		return false, fmt.Errorf("wal: redo %s lsn=%d: %w", r.Type, r.LSN, err)
	}
	page.SetLSN(f.Buf, r.LSN)
	pa.Unpin(f, true)
	return true, nil
}

// applyAction performs the page mutation a record describes. For CLRs, an
// empty Row means "tombstone the slot" (undo of insert) and a non-empty Row
// means "restore the row" (undo of delete).
func applyAction(buf []byte, r *Record) error {
	if page.TypeOf(buf) == page.TypeFree {
		page.InitRowPage(buf)
	}
	rp, err := page.AsRowPage(buf)
	if err != nil {
		return err
	}
	switch r.Type {
	case RecInsert:
		slot, ok := rp.InsertEncoded(r.Row)
		if !ok {
			return fmt.Errorf("redo insert: page full")
		}
		if slot != int(r.Slot) {
			return fmt.Errorf("redo insert: slot %d, logged %d", slot, r.Slot)
		}
	case RecDelete:
		rp.Delete(int(r.Slot))
	case RecCLR:
		if len(r.Row) == 0 {
			rp.Delete(int(r.Slot))
		} else {
			if err := rp.RestoreSlot(int(r.Slot), r.Row); err != nil {
				return err
			}
		}
	}
	return nil
}

// UndoTransaction rolls back one transaction by walking its PrevLSN chain,
// writing CLRs as it goes, and finishes with an abort record. Used both by
// crash recovery (losers) and by live transaction rollback. Returns the
// number of operations undone.
func UndoTransaction(l *Log, pa PageAccess, tx uint64, lastLSN uint64) (int, error) {
	undone := 0
	lsn := lastLSN
	for lsn != 0 {
		r, err := l.ReadAt(lsn)
		if err != nil {
			return undone, fmt.Errorf("wal: undo read lsn=%d: %w", lsn, err)
		}
		switch r.Type {
		case RecCLR:
			lsn = r.UndoNext
			continue
		case RecBegin:
			lsn = 0
			continue
		case RecInsert, RecDelete:
			clr := &Record{
				Type:     RecCLR,
				TxID:     tx,
				PrevLSN:  lastLSN,
				Page:     r.Page,
				Slot:     r.Slot,
				UndoNext: r.PrevLSN,
			}
			if r.Type == RecDelete {
				clr.Row = r.Row // restore the deleted row
			}
			clrLSN := l.Append(clr)
			f, err := pa.Fetch(r.Page)
			if err != nil {
				return undone, fmt.Errorf("wal: undo fetch %v: %w", r.Page, err)
			}
			if err := applyAction(f.Buf, clr); err != nil {
				pa.Unpin(f, false)
				return undone, fmt.Errorf("wal: undo apply lsn=%d: %w", lsn, err)
			}
			page.SetLSN(f.Buf, clrLSN)
			pa.Unpin(f, true)
			lastLSN = clrLSN
			undone++
			lsn = r.PrevLSN
		default:
			lsn = r.PrevLSN
		}
	}
	l.Append(&Record{Type: RecAbort, TxID: tx, PrevLSN: lastLSN})
	return undone, nil
}

// WriteCheckpoint logs a fuzzy checkpoint capturing the caller's ATT and
// DPT snapshots and flushes the log.
func WriteCheckpoint(l *Log, att map[uint64]*TxInfo, dpt map[page.Key]uint64) (uint64, error) {
	r := &Record{Type: RecCheckpoint, Checkpoint: encodeCheckpoint(att, dpt)}
	lsn := l.Append(r)
	return lsn, l.Flush()
}

func encodeCheckpoint(att map[uint64]*TxInfo, dpt map[page.Key]uint64) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(att)))
	txs := make([]uint64, 0, len(att))
	for tx := range att {
		txs = append(txs, tx)
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i] < txs[j] })
	for _, tx := range txs {
		info := att[tx]
		buf = binary.AppendUvarint(buf, tx)
		buf = binary.AppendUvarint(buf, info.LastLSN)
		buf = append(buf, byte(info.Status))
		buf = binary.AppendVarint(buf, int64(info.Coordinator))
	}
	buf = binary.AppendUvarint(buf, uint64(len(dpt)))
	keys := make([]page.Key, 0, len(dpt))
	for k := range dpt {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].File != keys[j].File {
			return keys[i].File < keys[j].File
		}
		return keys[i].Page < keys[j].Page
	})
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(k.File))
		buf = binary.AppendUvarint(buf, uint64(k.Page))
		buf = binary.AppendUvarint(buf, dpt[k])
	}
	return buf
}

func decodeCheckpoint(b []byte) (map[uint64]*TxInfo, map[page.Key]uint64) {
	att := map[uint64]*TxInfo{}
	dpt := map[page.Key]uint64{}
	pos := 0
	read := func() uint64 {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			pos = len(b) + 1
			return 0
		}
		pos += n
		return v
	}
	nATT := read()
	for i := uint64(0); i < nATT && pos <= len(b); i++ {
		tx := read()
		last := read()
		if pos >= len(b) {
			break
		}
		status := TxStatus(b[pos])
		pos++
		coord, n := binary.Varint(b[pos:])
		if n <= 0 {
			break
		}
		pos += n
		att[tx] = &TxInfo{LastLSN: last, Status: status, Coordinator: int32(coord)}
	}
	nDPT := read()
	for i := uint64(0); i < nDPT && pos <= len(b); i++ {
		file := read()
		pg := read()
		rec := read()
		if pos > len(b) {
			break
		}
		dpt[page.Key{File: page.FileID(file), Page: uint32(pg)}] = rec
	}
	return att, dpt
}
