// Package wal implements HRDBMS's per-node log manager and ARIES-style
// recovery (Sections I and VI): a write-ahead log of physiological records,
// fuzzy checkpoints, and the analysis / redo / undo passes with compensation
// log records. Coordinator nodes additionally log XA (2PC) records — a
// worker that finds a transaction in-doubt after restart asks the
// coordinator recorded in its PREPARE record for the outcome.
package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/page"
)

// RecType identifies a log record type.
type RecType uint8

// Log record types.
const (
	RecBegin RecType = iota + 1
	RecInsert
	RecDelete
	RecCLR
	RecCommit
	RecAbort
	RecPrepare // XA: node is prepared; payload holds the coordinator ID
	RecCheckpoint
	// Coordinator-side XA log records.
	RecXACommit
	RecXARollback
)

// String names the record type.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecCLR:
		return "CLR"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecPrepare:
		return "PREPARE"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecXACommit:
		return "XACOMMIT"
	case RecXARollback:
		return "XAROLLBACK"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Record is one WAL entry. LSN is assigned by the log manager at append
// time (it is the record's byte offset in the log file).
type Record struct {
	LSN     uint64
	Type    RecType
	TxID    uint64
	PrevLSN uint64 // previous record of the same transaction (0 = none)

	// Page operation fields (Insert/Delete/CLR).
	Page page.Key
	Slot uint16
	Row  []byte // encoded row: after-image for Insert, before-image for Delete

	// CLR: next record to undo for this transaction.
	UndoNext uint64

	// Prepare: which coordinator owns the global transaction outcome.
	Coordinator int32

	// Checkpoint payload (serialized ATT and DPT).
	Checkpoint []byte
}

// encode serializes the record body (everything but the framing).
func (r *Record) encode() []byte {
	buf := make([]byte, 0, 64+len(r.Row)+len(r.Checkpoint))
	buf = append(buf, byte(r.Type))
	buf = binary.AppendUvarint(buf, r.TxID)
	buf = binary.AppendUvarint(buf, r.PrevLSN)
	buf = binary.AppendUvarint(buf, uint64(r.Page.File))
	buf = binary.AppendUvarint(buf, uint64(r.Page.Page))
	buf = binary.AppendUvarint(buf, uint64(r.Slot))
	buf = binary.AppendUvarint(buf, r.UndoNext)
	buf = binary.AppendVarint(buf, int64(r.Coordinator))
	buf = binary.AppendUvarint(buf, uint64(len(r.Row)))
	buf = append(buf, r.Row...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Checkpoint)))
	buf = append(buf, r.Checkpoint...)
	return buf
}

func decodeRecord(b []byte) (*Record, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("wal: empty record")
	}
	r := &Record{Type: RecType(b[0])}
	pos := 1
	read := func() (uint64, error) {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("wal: truncated record")
		}
		pos += n
		return v, nil
	}
	var err error
	var v uint64
	if r.TxID, err = read(); err != nil {
		return nil, err
	}
	if r.PrevLSN, err = read(); err != nil {
		return nil, err
	}
	if v, err = read(); err != nil {
		return nil, err
	}
	r.Page.File = page.FileID(v)
	if v, err = read(); err != nil {
		return nil, err
	}
	r.Page.Page = uint32(v)
	if v, err = read(); err != nil {
		return nil, err
	}
	r.Slot = uint16(v)
	if r.UndoNext, err = read(); err != nil {
		return nil, err
	}
	coord, n := binary.Varint(b[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("wal: truncated coordinator")
	}
	pos += n
	r.Coordinator = int32(coord)
	if v, err = read(); err != nil {
		return nil, err
	}
	if uint64(len(b)-pos) < v {
		return nil, fmt.Errorf("wal: truncated row payload")
	}
	if v > 0 {
		r.Row = append([]byte(nil), b[pos:pos+int(v)]...)
	}
	pos += int(v)
	if v, err = read(); err != nil {
		return nil, err
	}
	if uint64(len(b)-pos) < v {
		return nil, fmt.Errorf("wal: truncated checkpoint payload")
	}
	if v > 0 {
		r.Checkpoint = append([]byte(nil), b[pos:pos+int(v)]...)
	}
	return r, nil
}
