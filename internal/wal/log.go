package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
)

// Log is a node's write-ahead log manager. Records are framed as
// [uint32 length][uint32 crc32][body]; a record's LSN is its byte offset in
// the file plus one (so LSN 0 means "none"). Appends go to an in-memory
// tail that Flush forces to disk; the buffer manager calls FlushUpTo before
// evicting a dirty page (the write-ahead rule).
type Log struct {
	mu         sync.Mutex //lint:lockorder wal.log
	f          *os.File
	fileEnd    uint64 // durable bytes
	tail       []byte // appended but not yet flushed
	nextOff    uint64 // fileEnd + len(tail)
	flushedLSN uint64
	lastCkpt   uint64 // LSN of the most recent checkpoint record

	appends atomic.Int64 // records appended (read by the metrics registry)
	flushes atomic.Int64 // fsyncs performed
}

const frameHeader = 8

// Open opens (or creates) the log file at path and scans it to find the
// durable end, truncating any torn record at the tail.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f}
	end, lastCkpt, err := l.scanEnd()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(int64(end)); err != nil {
		f.Close()
		return nil, err
	}
	l.fileEnd = end
	l.nextOff = end
	l.flushedLSN = end
	l.lastCkpt = lastCkpt
	return l, nil
}

// scanEnd walks the file validating frames, returning the end of the last
// valid record and the LSN of the last checkpoint seen.
func (l *Log) scanEnd() (uint64, uint64, error) {
	st, err := l.f.Stat()
	if err != nil {
		return 0, 0, err
	}
	size := uint64(st.Size())
	var off uint64
	var lastCkpt uint64
	var hdr [frameHeader]byte
	for off+frameHeader <= size {
		if _, err := l.f.ReadAt(hdr[:], int64(off)); err != nil {
			break
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if length == 0 || off+frameHeader+uint64(length) > size {
			break
		}
		body := make([]byte, length)
		if _, err := l.f.ReadAt(body, int64(off+frameHeader)); err != nil {
			break
		}
		if crc32.ChecksumIEEE(body) != crc {
			break // torn write at the tail
		}
		if RecType(body[0]) == RecCheckpoint {
			lastCkpt = off + 1
		}
		off += frameHeader + uint64(length)
	}
	return off, lastCkpt, nil
}

// Append adds a record to the log and assigns its LSN. The record is not
// durable until Flush/FlushUpTo covers it.
func (l *Log) Append(r *Record) uint64 {
	body := r.encode()
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.nextOff + 1
	r.LSN = lsn
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	l.tail = append(l.tail, hdr[:]...)
	l.tail = append(l.tail, body...)
	l.nextOff += frameHeader + uint64(len(body))
	if r.Type == RecCheckpoint {
		l.lastCkpt = lsn
	}
	l.appends.Add(1)
	return lsn
}

// Appends returns the number of records appended since Open.
func (l *Log) Appends() int64 { return l.appends.Load() }

// Flushes returns the number of fsyncs performed since Open.
func (l *Log) Flushes() int64 { return l.flushes.Load() }

// Flush forces the whole tail to disk.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if len(l.tail) == 0 {
		return nil
	}
	if _, err := l.f.WriteAt(l.tail, int64(l.fileEnd)); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.flushes.Add(1)
	l.fileEnd = l.nextOff
	l.tail = l.tail[:0]
	l.flushedLSN = l.fileEnd
	return nil
}

// FlushUpTo ensures every record with LSN ≤ lsn is durable.
func (l *Log) FlushUpTo(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn == 0 || lsn <= l.flushedLSN {
		return nil
	}
	return l.flushLocked()
}

// FlushedLSN returns the highest durable byte offset (as an LSN bound).
func (l *Log) FlushedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushedLSN
}

// LastCheckpointLSN returns the LSN of the most recent checkpoint record,
// or 0 if none.
func (l *Log) LastCheckpointLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastCkpt
}

// ReadAt reads the record at the given LSN (which must be a value returned
// by Append on this log).
func (l *Log) ReadAt(lsn uint64) (*Record, error) {
	if lsn == 0 {
		return nil, fmt.Errorf("wal: read at LSN 0")
	}
	if err := l.Flush(); err != nil {
		return nil, err
	}
	off := lsn - 1
	var hdr [frameHeader]byte
	if _, err := l.f.ReadAt(hdr[:], int64(off)); err != nil {
		return nil, fmt.Errorf("wal: read frame at %d: %w", lsn, err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:])
	body := make([]byte, length)
	if _, err := l.f.ReadAt(body, int64(off+frameHeader)); err != nil {
		return nil, fmt.Errorf("wal: read body at %d: %w", lsn, err)
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("wal: crc mismatch at %d", lsn)
	}
	r, err := decodeRecord(body)
	if err != nil {
		return nil, err
	}
	r.LSN = lsn
	return r, nil
}

// Scan iterates records starting at fromLSN (or the beginning if 0),
// calling fn for each; fn returning false stops the scan.
func (l *Log) Scan(fromLSN uint64, fn func(*Record) bool) error {
	if err := l.Flush(); err != nil {
		return err
	}
	l.mu.Lock()
	end := l.fileEnd
	l.mu.Unlock()
	off := uint64(0)
	if fromLSN > 0 {
		off = fromLSN - 1
	}
	var hdr [frameHeader]byte
	for off+frameHeader <= end {
		if _, err := l.f.ReadAt(hdr[:], int64(off)); err != nil {
			return fmt.Errorf("wal: scan frame at %d: %w", off, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		body := make([]byte, length)
		if _, err := l.f.ReadAt(body, int64(off+frameHeader)); err != nil {
			return fmt.Errorf("wal: scan body at %d: %w", off, err)
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:]) {
			return fmt.Errorf("wal: scan crc mismatch at %d", off)
		}
		r, err := decodeRecord(body)
		if err != nil {
			return err
		}
		r.LSN = off + 1
		if !fn(r) {
			return nil
		}
		off += frameHeader + uint64(length)
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	if err := l.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}
