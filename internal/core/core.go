// Package core is HRDBMS's public embedding API: open a cluster, execute
// SQL, load data, inspect plans. It wraps the cluster layer with the small
// surface a downstream application needs; examples/ and cmd/ build on it.
package core

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/external"
	"repro/internal/obs"
	"repro/internal/sqlparse"
	"repro/internal/types"
)

// Config sizes a database instance. Zero values select sensible defaults.
type Config struct {
	// Workers is the number of worker nodes (default 4).
	Workers int
	// Coordinators is the number of coordinator nodes (default 1).
	Coordinators int
	// DisksPerWorker spreads each worker's data over this many directories
	// (default 2).
	DisksPerWorker int
	// Dir is the on-disk location for data, WALs, and spill files.
	Dir string
	// PageSize in bytes (default 32 KiB; the paper supports up to 64 MiB).
	PageSize int
	// Nmax is the communication neighbor limit enforced by the tree and
	// binomial-graph topologies (default 4).
	Nmax int
	// MemRows is the per-operator row budget before spilling.
	MemRows int
	// LockTimeout bounds lock waits (cross-node deadlock prevention).
	LockTimeout time.Duration
	// Profile toggles execution strategies; defaults to the full HRDBMS
	// feature set. Baseline profiles are available via the baseline and
	// perfmodel packages.
	Profile *cluster.ExecProfile
	// TraceQueries records a per-operator trace of every query, retained
	// for the /debug/queries endpoint. EXPLAIN ANALYZE traces its own
	// query regardless.
	TraceQueries bool
}

// DB is an open HRDBMS instance.
type DB struct {
	cluster *cluster.Cluster
}

// Result is the outcome of one statement.
type Result = cluster.Result

// Open starts a database instance.
func Open(cfg Config) (*DB, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("core: Config.Dir is required")
	}
	prof := cluster.HRDBMSProfile()
	if cfg.Profile != nil {
		prof = *cfg.Profile
	}
	c, err := cluster.New(cluster.Config{
		NumWorkers:      cfg.Workers,
		NumCoordinators: cfg.Coordinators,
		DisksPerWorker:  cfg.DisksPerWorker,
		PageSize:        cfg.PageSize,
		BaseDir:         cfg.Dir,
		Nmax:            cfg.Nmax,
		MemRows:         cfg.MemRows,
		LockTimeout:     cfg.LockTimeout,
		Profile:         prof,
		TraceQueries:    cfg.TraceQueries,
	})
	if err != nil {
		return nil, err
	}
	return &DB{cluster: c}, nil
}

// Exec runs any SQL statement (DDL, DML, SELECT, EXPLAIN, ANALYZE).
func (db *DB) Exec(sql string) (*Result, error) {
	return db.cluster.ExecSQL(sql)
}

// Query runs a SELECT and returns its rows.
func (db *DB) Query(sql string) ([]types.Row, types.Schema, error) {
	res, err := db.cluster.ExecSQL(sql)
	if err != nil {
		return nil, types.Schema{}, err
	}
	return res.Rows, res.Schema, nil
}

// Explain returns the optimized logical plan as text.
func (db *DB) Explain(sql string) (string, error) {
	res, err := db.cluster.ExecSQL("EXPLAIN " + sql)
	if err != nil {
		return "", err
	}
	var out string
	for _, r := range res.Rows {
		out += r[0].Str() + "\n"
	}
	return out, nil
}

// Load bulk-loads rows into a table, partitioning across workers.
func (db *DB) Load(table string, rows []types.Row) (int, error) {
	return db.cluster.Load(table, rows)
}

// Catalog exposes the metadata store (read-mostly).
func (db *DB) Catalog() *catalog.Catalog { return db.cluster.Catalog() }

// RegisterExternal registers a user-defined external table (UET) so scans
// of its partitions are distributed across workers.
func (db *DB) RegisterExternal(t external.Table) error {
	return db.cluster.External.Register(t)
}

// QueryExternal scans an external table with partitions distributed over
// workers, applying an optional WHERE clause.
func (db *DB) QueryExternal(name, where string) ([]types.Row, error) {
	return db.cluster.QueryExternal(name, where)
}

// Cluster exposes the underlying cluster for benchmarks and experiments.
func (db *DB) Cluster() *cluster.Cluster { return db.cluster }

// Registry exposes the instance's metrics registry (the /metrics source).
func (db *DB) Registry() *obs.Registry { return db.cluster.Reg }

// Traces exposes the recent-query trace store (the /debug/queries source).
func (db *DB) Traces() *obs.TraceStore { return db.cluster.Traces }

// Close shuts the instance down cleanly.
func (db *DB) Close() error { return db.cluster.Close() }

// ParseSQL checks a statement parses, without executing (for tools).
func ParseSQL(sql string) error {
	_, err := sqlparse.Parse(sql)
	return err
}
