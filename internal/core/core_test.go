package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/external"
	"repro/internal/types"
)

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{Workers: 3, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Error("missing Dir should fail")
	}
}

func TestEndToEndSQL(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec(`CREATE TABLE kv (k INT, v VARCHAR(10)) PARTITION BY HASH(k)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO kv VALUES (1,'a'), (2,'b'), (3,'c')`); err != nil {
		t.Fatal(err)
	}
	rows, schema, err := db.Query(`SELECT k, v FROM kv ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][1].Str() != "a" {
		t.Fatalf("rows = %v", rows)
	}
	if schema.Cols[0].Name != "k" {
		t.Errorf("schema = %v", schema)
	}
	if err := ParseSQL(`SELECT 1 FROM kv`); err != nil {
		t.Errorf("ParseSQL: %v", err)
	}
	if err := ParseSQL(`SELEC nope`); err == nil {
		t.Error("bad SQL should fail parse")
	}
}

func TestExplainAndCatalog(t *testing.T) {
	db := openDB(t)
	db.Exec(`CREATE TABLE t (a INT, b FLOAT) PARTITION BY HASH(a)`)
	planText, err := db.Explain(`SELECT sum(b) FROM t WHERE a > 5`)
	if err != nil {
		t.Fatal(err)
	}
	if planText == "" {
		t.Error("empty plan")
	}
	if _, err := db.Catalog().Table("t"); err != nil {
		t.Errorf("catalog lookup: %v", err)
	}
}

func TestLoadBulk(t *testing.T) {
	db := openDB(t)
	db.Exec(`CREATE TABLE bulk (id INT, x FLOAT) PARTITION BY HASH(id)`)
	var rows []types.Row
	for i := int64(0); i < 500; i++ {
		rows = append(rows, types.Row{types.NewInt(i), types.NewFloat(float64(i) / 2)})
	}
	n, err := db.Load("bulk", rows)
	if err != nil || n != 500 {
		t.Fatalf("load: %d %v", n, err)
	}
	out, _, err := db.Query(`SELECT count(*), sum(x) FROM bulk`)
	if err != nil || out[0][0].Int() != 500 {
		t.Fatalf("count after load = %v err=%v", out, err)
	}
}

func TestExternalTableViaCore(t *testing.T) {
	db := openDB(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "part-0.csv"), []byte("1|x\n2|y\n3|z\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "tag", Kind: types.KindString},
	)
	tbl, err := external.NewCSVTable("ext", schema, dir, "part-*.csv", '|')
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterExternal(tbl); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryExternal("ext", "id >= 2")
	if err != nil || len(rows) != 2 {
		t.Fatalf("external query: %v %v", rows, err)
	}
	if _, err := db.QueryExternal("missing", ""); err == nil {
		t.Error("unknown external table should fail")
	}
	if _, err := db.QueryExternal("ext", "syntax >>> error"); err == nil {
		t.Error("bad WHERE should fail")
	}
}
