package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindString: "VARCHAR", KindDate: "DATE", KindBool: "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{
		{"int", KindInt}, {"INTEGER", KindInt}, {"BigInt", KindInt},
		{"decimal", KindFloat}, {"DOUBLE", KindFloat},
		{"varchar", KindString}, {"char", KindString},
		{"date", KindDate}, {"bool", KindBool},
	} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) should fail")
	}
}

func TestCompareOrdering(t *testing.T) {
	for _, tc := range []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewString("abc"), NewString("abd"), -1},
		{NewString("abc"), NewString("abc"), 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewBool(false), NewBool(true), -1},
		{MustDate("2019-01-01"), MustDate("2019-06-01"), -1},
		// cross numeric kinds
		{NewInt(2), NewFloat(2.0), 0},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(3.5), NewInt(3), 1},
	} {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(NewInt(a), NewInt(b)) == -Compare(NewInt(b), NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashConsistency(t *testing.T) {
	if Hash(NewInt(3)) != Hash(NewFloat(3.0)) {
		t.Error("Hash(3) != Hash(3.0); numeric equality must imply hash equality")
	}
	if Hash(NewString("x")) == Hash(NewString("y")) {
		t.Error("distinct strings should (very likely) hash differently")
	}
	f := func(v int64) bool { return Hash(NewInt(v)) == Hash(NewInt(v)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashRow(t *testing.T) {
	r1 := Row{NewInt(1), NewString("a"), NewFloat(2.5)}
	r2 := Row{NewInt(1), NewString("a"), NewFloat(2.5)}
	if HashRow(r1, []int{0, 1, 2}) != HashRow(r2, []int{0, 1, 2}) {
		t.Error("equal rows must hash equal")
	}
	r3 := Row{NewInt(2), NewString("a"), NewFloat(2.5)}
	if HashRow(r1, []int{0}) == HashRow(r3, []int{0}) {
		t.Error("different keys should hash differently")
	}
	if HashRow(r1, []int{1, 2}) != HashRow(r3, []int{1, 2}) {
		t.Error("hash over identical projections must match")
	}
}

func TestDateRoundTrip(t *testing.T) {
	v := MustDate("2019-06-15")
	if got := v.String(); got != "2019-06-15" {
		t.Errorf("date round trip = %q", got)
	}
	if _, err := DateFromString("not-a-date"); err == nil {
		t.Error("bad date should fail")
	}
}

func TestRowOps(t *testing.T) {
	r := Row{NewInt(1), NewInt(2), NewInt(3)}
	p := r.Project([]int{2, 0})
	if p[0].Int() != 3 || p[1].Int() != 1 {
		t.Errorf("Project = %v", p)
	}
	c := r.Concat(Row{NewInt(4)})
	if len(c) != 4 || c[3].Int() != 4 {
		t.Errorf("Concat = %v", c)
	}
	cl := r.Clone()
	cl[0] = NewInt(99)
	if r[0].Int() != 1 {
		t.Error("Clone must not alias")
	}
}

func TestSchemaFind(t *testing.T) {
	s := NewSchema(
		Column{Name: "l.l_orderkey", Kind: KindInt},
		Column{Name: "price", Kind: KindFloat},
	)
	if s.Find("L.L_ORDERKEY") != 0 {
		t.Error("qualified case-insensitive lookup failed")
	}
	if s.Find("l_orderkey") != 0 {
		t.Error("bare name should match qualified column")
	}
	if s.Find("x.price") != 1 {
		t.Error("qualified name should match bare column")
	}
	if s.Find("nope") != -1 {
		t.Error("missing column should return -1")
	}
}

func TestSchemaQualify(t *testing.T) {
	s := NewSchema(Column{Name: "a.x", Kind: KindInt}, Column{Name: "y", Kind: KindInt})
	q := s.Qualify("t")
	if q.Cols[0].Name != "t.x" || q.Cols[1].Name != "t.y" {
		t.Errorf("Qualify = %v", q)
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(KindInt, "42")
	if err != nil || v.Int() != 42 {
		t.Errorf("ParseValue int = %v, %v", v, err)
	}
	v, err = ParseValue(KindFloat, "3.25")
	if err != nil || v.Float() != 3.25 {
		t.Errorf("ParseValue float = %v, %v", v, err)
	}
	v, err = ParseValue(KindDate, "2020-02-29")
	if err != nil || v.String() != "2020-02-29" {
		t.Errorf("ParseValue date = %v, %v", v, err)
	}
	if v, _ := ParseValue(KindInt, "NULL"); !v.IsNull() {
		t.Error("NULL literal should parse as null")
	}
	if _, err := ParseValue(KindInt, "abc"); err == nil {
		t.Error("bad int should fail")
	}
}

func TestEncodeDecodeValue(t *testing.T) {
	vals := []Value{
		Null,
		NewInt(0), NewInt(-1), NewInt(math.MaxInt64), NewInt(math.MinInt64),
		NewFloat(0), NewFloat(-2.75), NewFloat(math.Inf(1)),
		NewString(""), NewString("hello world"), NewString(string(make([]byte, 300))),
		NewBool(true), NewBool(false),
		MustDate("1992-01-02"), MustDate("2026-07-06"),
	}
	for _, v := range vals {
		buf := AppendValue(nil, v)
		if len(buf) != EncodedSize(v) {
			t.Errorf("EncodedSize(%v) = %d, actual %d", v, EncodedSize(v), len(buf))
		}
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if n != len(buf) {
			t.Errorf("DecodeValue(%v) consumed %d of %d", v, n, len(buf))
		}
		if Compare(got, v) != 0 {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestEncodeDecodeRow(t *testing.T) {
	r := Row{NewInt(7), NewString("abc"), Null, NewFloat(1.5), NewBool(true)}
	buf := AppendRow(nil, r)
	if len(buf) != RowEncodedSize(r) {
		t.Errorf("RowEncodedSize = %d, actual %d", RowEncodedSize(r), len(buf))
	}
	got, n, err := DecodeRow(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("DecodeRow: %v (n=%d, len=%d)", err, n, len(buf))
	}
	for i := range r {
		if Compare(got[i], r[i]) != 0 {
			t.Errorf("col %d: %v != %v", i, got[i], r[i])
		}
	}
}

func TestEncodeDecodeRowQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		if math.IsNaN(fl) {
			fl = 0
		}
		r := Row{NewInt(i), NewFloat(fl), NewString(s), NewBool(b), Null}
		buf := AppendRow(nil, r)
		got, n, err := DecodeRow(buf)
		if err != nil || n != len(buf) || len(got) != len(r) {
			return false
		}
		for j := range r {
			if Compare(got[j], r[j]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeValueErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty buffer should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KindFloat), 1, 2}); err == nil {
		t.Error("short float should fail")
	}
	if _, _, err := DecodeValue([]byte{200}); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KindString), 10, 'a'}); err == nil {
		t.Error("short string should fail")
	}
}
