package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of values and rows, shared by the page layer (row pages),
// the WAL (logical records), and the network transport (shuffled batches).
//
// A value encodes as a 1-byte kind tag followed by a kind-specific payload:
// Int/Date as varint, Float as 8-byte IEEE, Bool as 1 byte, String as a
// uvarint length followed by the bytes. NULL is just the tag.

// AppendValue appends the binary encoding of v to dst and returns dst.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case KindNull:
	case KindInt, KindDate:
		dst = binary.AppendVarint(dst, v.I)
	case KindBool:
		if v.I != 0 {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
		dst = append(dst, buf[:]...)
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.S)))
		dst = append(dst, v.S...)
	}
	return dst
}

// DecodeValue decodes one value from b, returning the value and the number
// of bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Null, 0, fmt.Errorf("types: decode value: empty buffer")
	}
	k := Kind(b[0])
	pos := 1
	switch k {
	case KindNull:
		return Null, pos, nil
	case KindInt, KindDate:
		i, n := binary.Varint(b[pos:])
		if n <= 0 {
			return Null, 0, fmt.Errorf("types: decode value: bad varint")
		}
		return Value{K: k, I: i}, pos + n, nil
	case KindBool:
		if len(b) < pos+1 {
			return Null, 0, fmt.Errorf("types: decode value: short bool")
		}
		return Value{K: KindBool, I: int64(b[pos])}, pos + 1, nil
	case KindFloat:
		if len(b) < pos+8 {
			return Null, 0, fmt.Errorf("types: decode value: short float")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(b[pos:]))
		return Value{K: KindFloat, F: f}, pos + 8, nil
	case KindString:
		l, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return Null, 0, fmt.Errorf("types: decode value: bad string length")
		}
		pos += n
		if uint64(len(b)-pos) < l {
			return Null, 0, fmt.Errorf("types: decode value: short string (%d < %d)", len(b)-pos, l)
		}
		return Value{K: KindString, S: string(b[pos : pos+int(l)])}, pos + int(l), nil
	default:
		return Null, 0, fmt.Errorf("types: decode value: unknown kind %d", b[0])
	}
}

// AppendRow appends the binary encoding of r (a uvarint arity followed by
// the encoded values) to dst and returns dst.
func AppendRow(dst []byte, r Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeRow decodes one row from b, returning the row and bytes consumed.
func DecodeRow(b []byte) (Row, int, error) {
	arity, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("types: decode row: bad arity")
	}
	pos := n
	row := make(Row, arity)
	for i := range row {
		v, m, err := DecodeValue(b[pos:])
		if err != nil {
			return nil, 0, fmt.Errorf("types: decode row col %d: %w", i, err)
		}
		row[i] = v
		pos += m
	}
	return row, pos, nil
}

// EncodedSize returns the number of bytes AppendValue would emit for v.
func EncodedSize(v Value) int {
	switch v.K {
	case KindNull:
		return 1
	case KindInt, KindDate:
		return 1 + varintLen(v.I)
	case KindBool:
		return 2
	case KindFloat:
		return 9
	case KindString:
		return 1 + uvarintLen(uint64(len(v.S))) + len(v.S)
	default:
		return 1
	}
}

// RowEncodedSize returns the number of bytes AppendRow would emit for r.
func RowEncodedSize(r Row) int {
	n := uvarintLen(uint64(len(r)))
	for _, v := range r {
		n += EncodedSize(v)
	}
	return n
}

func varintLen(v int64) int {
	u := uint64(v) << 1
	if v < 0 {
		u = ^u
	}
	return uvarintLen(u)
}

func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}
