// Package types defines the value, row, and schema primitives shared by the
// storage engine, execution engine, and SQL layers.
//
// Values are a compact tagged union rather than interface{} so that row
// batches stay dense and comparisons avoid allocation. Dates are stored as
// days since the Unix epoch in the integer payload.
package types

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindDate
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind parses a SQL type name into a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return KindFloat, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return KindString, nil
	case "DATE":
		return KindDate, nil
	case "BOOLEAN", "BOOL":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("types: unknown type name %q", s)
	}
}

// Value is a tagged union holding one SQL value. The zero Value is NULL.
type Value struct {
	K Kind
	I int64   // payload for Int, Date (days since epoch), Bool (0/1)
	F float64 // payload for Float
	S string  // payload for String
}

// Null is the SQL NULL value.
var Null = Value{K: KindNull}

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{K: KindInt, I: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{K: KindFloat, F: v} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{K: KindString, S: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value {
	if v {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool, I: 0}
}

// NewDate returns a DATE value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{K: KindDate, I: days} }

// DateFromString parses "YYYY-MM-DD" into a DATE value.
func DateFromString(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("types: bad date %q: %w", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// MustDate parses "YYYY-MM-DD" and panics on failure. For tests and
// compile-time-constant workload definitions.
func MustDate(s string) Value {
	v, err := DateFromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool returns the boolean payload. Only meaningful for KindBool.
func (v Value) Bool() bool { return v.K == KindBool && v.I != 0 }

// Int returns the integer payload.
func (v Value) Int() int64 { return v.I }

// Float returns the numeric payload as a float64, converting integers.
func (v Value) Float() float64 {
	if v.K == KindInt || v.K == KindDate {
		return float64(v.I)
	}
	return v.F
}

// Str returns the string payload.
func (v Value) Str() string { return v.S }

// Time returns a DATE value as a time.Time in UTC.
func (v Value) Time() time.Time { return time.Unix(v.I*86400, 0).UTC() }

// String renders the value for display.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindDate:
		return v.Time().Format("2006-01-02")
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(kind=%d)", v.K)
	}
}

// numericKinds reports whether both kinds are numeric (int/float/date).
func numericKinds(a, b Kind) bool {
	num := func(k Kind) bool { return k == KindInt || k == KindFloat || k == KindDate }
	return num(a) && num(b)
}

// Compare orders two values. NULL sorts before everything; values of
// different non-numeric kinds compare by kind. Returns -1, 0, or 1.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == KindNull && b.K == KindNull:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.K != b.K {
		if numericKinds(a.K, b.K) {
			af, bf := a.Float(), b.Float()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case KindInt, KindDate, KindBool:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	case KindFloat:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		default:
			return 0
		}
	case KindString:
		return strings.Compare(a.S, b.S)
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare semantics
// (NULL equals NULL here; SQL three-valued logic lives in the expression
// evaluator, not in this structural comparison).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash computes a stable 64-bit hash of the value, used for hash
// partitioning, hash joins, and hash aggregation. Numeric kinds hash by
// their numeric payload so that INT 3 and FLOAT 3.0 collide deliberately.
func Hash(v Value) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	switch v.K {
	case KindNull:
		_, _ = h.Write([]byte{0})
	case KindInt, KindDate, KindBool:
		u := uint64(v.I)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	case KindFloat:
		// Hash integral floats as their integer value to keep numeric
		// equality consistent with Hash equality.
		if v.F == float64(int64(v.F)) {
			return Hash(NewInt(int64(v.F)))
		}
		u := uint64(int64(v.F * 1e6))
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	case KindString:
		_, _ = h.Write([]byte(v.S))
	}
	return h.Sum64()
}

// HashRow combines the hashes of the values at the given column offsets.
func HashRow(r Row, cols []int) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, c := range cols {
		h = h*1099511628211 ^ Hash(r[c])
	}
	return h
}

// Row is a single tuple.
type Row []Value

// Clone returns a deep-enough copy of the row (values are immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns a new row with s appended after r.
func (r Row) Concat(s Row) Row {
	out := make(Row, 0, len(r)+len(s))
	out = append(out, r...)
	out = append(out, s...)
	return out
}

// Project returns a new row holding the values at the given offsets.
func (r Row) Project(cols []int) Row {
	out := make(Row, len(cols))
	for i, c := range cols {
		out[i] = r[c]
	}
	return out
}

// String renders the row as a tab-separated line.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return strings.Join(parts, "\t")
}

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from alternating name/kind pairs.
func NewSchema(cols ...Column) Schema { return Schema{Cols: cols} }

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Cols) }

// Find returns the offset of the named column, or -1. Lookup is
// case-insensitive and also matches "qualifier.name" against "name".
func (s Schema) Find(name string) int {
	lower := strings.ToLower(name)
	for i, c := range s.Cols {
		if strings.ToLower(c.Name) == lower {
			return i
		}
	}
	// Try suffix match: schema stores qualified names but query used bare.
	for i, c := range s.Cols {
		cl := strings.ToLower(c.Name)
		if idx := strings.LastIndexByte(cl, '.'); idx >= 0 && cl[idx+1:] == lower {
			return i
		}
	}
	// Try the reverse: query used qualified, schema stores bare.
	if idx := strings.LastIndexByte(lower, '.'); idx >= 0 {
		suffix := lower[idx+1:]
		for i, c := range s.Cols {
			if strings.ToLower(c.Name) == suffix {
				return i
			}
		}
	}
	return -1
}

// Concat returns the schema of r ++ s.
func (s Schema) Concat(t Schema) Schema {
	cols := make([]Column, 0, len(s.Cols)+len(t.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, t.Cols...)
	return Schema{Cols: cols}
}

// Project returns a schema holding only the given offsets.
func (s Schema) Project(cols []int) Schema {
	out := make([]Column, len(cols))
	for i, c := range cols {
		out[i] = s.Cols[c]
	}
	return Schema{Cols: out}
}

// Qualify returns a copy of the schema with every column name prefixed by
// "alias." (replacing any existing qualifier).
func (s Schema) Qualify(alias string) Schema {
	out := make([]Column, len(s.Cols))
	for i, c := range s.Cols {
		name := c.Name
		if idx := strings.LastIndexByte(name, '.'); idx >= 0 {
			name = name[idx+1:]
		}
		out[i] = Column{Name: alias + "." + name, Kind: c.Kind}
	}
	return Schema{Cols: out}
}

// String renders the schema as "(name TYPE, ...)".
func (s Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + " " + c.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ParseValue parses a textual literal into a value of the requested kind.
func ParseValue(kind Kind, text string) (Value, error) {
	if text == "" || strings.EqualFold(text, "null") {
		return Null, nil
	}
	switch kind {
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return Null, fmt.Errorf("types: bad int %q: %w", text, err)
		}
		return NewInt(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
		if err != nil {
			return Null, fmt.Errorf("types: bad float %q: %w", text, err)
		}
		return NewFloat(f), nil
	case KindString:
		return NewString(text), nil
	case KindDate:
		return DateFromString(strings.TrimSpace(text))
	case KindBool:
		b, err := strconv.ParseBool(strings.TrimSpace(text))
		if err != nil {
			return Null, fmt.Errorf("types: bad bool %q: %w", text, err)
		}
		return NewBool(b), nil
	default:
		return Null, fmt.Errorf("types: cannot parse into kind %v", kind)
	}
}
