package network

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/compress"
)

// compressedFrameBit marks a frame whose payload is LZ4-compressed. It
// lives in the top bit of the frame-length prefix, which is free because
// plain frame lengths are validated against a 1<<30 ceiling. A compressed
// frame's body carries a uint32 raw-payload length ahead of the LZ4 block:
//
//	uint32 frameLen|bit31 | int32 from | int32 dest | uint16 chanLen | channel | uint32 rawLen | lz4(payload)
//
// Receivers decode by inspecting the bit, so compression is a per-sender
// choice and mixed clusters interoperate.
const compressedFrameBit = uint32(1) << 31

// TCPEndpoint implements Endpoint over real sockets for multi-process
// deployments (cmd/hrdbms-server). Frames are length-prefixed:
//
//	uint32 frameLen | int32 from | int32 dest | uint16 chanLen | channel | payload
//
// Outbound connections are dialed lazily and cached; inbound frames are
// demultiplexed into per-channel mailboxes identical to the in-process
// fabric's.
type TCPEndpoint struct {
	id       int
	listener net.Listener
	peers    map[int]string // node ID → address
	meter    *Meter         // optional; set via SetMeter
	compress bool           // LZ4-compress outbound payloads; set via EnableCompression
	mu       sync.Mutex
	conns    map[int]net.Conn
	boxes    map[string]chan Message
	closed   chan struct{}
	once     sync.Once
	wg       sync.WaitGroup
}

// NewTCPEndpoint binds addr for node id and starts accepting frames.
// peers maps every node ID (including self) to its dialable address.
func NewTCPEndpoint(id int, addr string, peers map[int]string) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	e := &TCPEndpoint{
		id:       id,
		listener: l,
		peers:    peers,
		conns:    map[int]net.Conn{},
		boxes:    map[string]chan Message{},
		closed:   make(chan struct{}),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the bound listen address (useful with ":0").
func (e *TCPEndpoint) Addr() string { return e.listener.Addr().String() }

// SetMeter attaches a traffic meter. Sends record the payload size (not
// the frame overhead) so TCP accounting matches the in-process fabric
// byte-for-byte; self-sends are skipped the same way loopback delivery is.
// Call before the endpoint is used; the meter is read without e.mu.
func (e *TCPEndpoint) SetMeter(m *Meter) { e.meter = m }

// EnableCompression turns on LZ4 compression of outbound frame payloads.
// Frames only ship compressed when that actually saves bytes, so
// incompressible payloads pay one probe and no size penalty. Metering is
// unchanged — the meter still records raw payload sizes so accounting
// stays identical to the in-process fabric — but the meter additionally
// tracks raw-vs-wire bytes for compressed frames (Meter.CompressedBytes).
// Receivers decode compressed frames regardless of this setting. Call
// before the endpoint is used; the flag is read without e.mu.
func (e *TCPEndpoint) EnableCompression() { e.compress = true }

// NodeID returns this endpoint's node ID.
func (e *TCPEndpoint) NodeID() int { return e.id }

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		frameLen := binary.LittleEndian.Uint32(hdr[:])
		compressed := frameLen&compressedFrameBit != 0
		frameLen &^= compressedFrameBit
		if frameLen < 10 || frameLen > 1<<30 {
			return
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		from := int(int32(binary.LittleEndian.Uint32(frame[0:])))
		dest := int(int32(binary.LittleEndian.Uint32(frame[4:])))
		chanLen := int(binary.LittleEndian.Uint16(frame[8:]))
		if 10+chanLen > len(frame) {
			return
		}
		channel := string(frame[10 : 10+chanLen])
		payload := frame[10+chanLen:]
		if compressed {
			if len(payload) < 4 {
				return
			}
			rawLen := binary.LittleEndian.Uint32(payload)
			if rawLen > 1<<30 {
				return
			}
			raw, err := compress.DecompressLZ4(payload[4:], int(rawLen))
			if err != nil {
				return
			}
			payload = raw
		}
		select {
		case e.box(channel) <- Message{From: from, Dest: dest, Channel: channel, Payload: payload}:
		case <-e.closed:
			return
		}
	}
}

func (e *TCPEndpoint) box(channel string) chan Message {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.boxes[channel]
	if !ok {
		b = make(chan Message, 1024)
		e.boxes[channel] = b
	}
	return b
}

func (e *TCPEndpoint) conn(to int) (net.Conn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.conns[to]; ok {
		return c, nil
	}
	addr, ok := e.peers[to]
	if !ok {
		return nil, fmt.Errorf("network: no address for node %d", to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: dial node %d (%s): %w", to, addr, err)
	}
	e.conns[to] = c
	return c, nil
}

// Send frames and writes the message to the peer, dialing on first use.
func (e *TCPEndpoint) Send(to, dest int, channel string, payload []byte) error {
	select {
	case <-e.closed:
		return ErrClosed
	default:
	}
	c, err := e.conn(to)
	if err != nil {
		return err
	}
	if e.meter != nil {
		e.meter.record(e.id, to, channel, len(payload))
	}
	// Compression never changes metering above: the meter sees raw payload
	// bytes either way, matching the in-process fabric byte-for-byte.
	wire := payload
	frameBits := uint32(0)
	if e.compress && len(payload) > 0 {
		comp := compress.CompressLZ4(payload)
		if len(comp)+4 < len(payload) {
			wire = make([]byte, 4+len(comp))
			binary.LittleEndian.PutUint32(wire, uint32(len(payload)))
			copy(wire[4:], comp)
			frameBits = compressedFrameBit
		}
		if e.meter != nil {
			e.meter.recordCompression(len(payload), len(wire))
		}
	}
	frame := make([]byte, 0, 14+len(channel)+len(wire))
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(10+len(channel)+len(wire))|frameBits)
	frame = append(frame, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(int32(e.id)))
	frame = append(frame, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(int32(dest)))
	frame = append(frame, b4[:]...)
	var b2 [2]byte
	binary.LittleEndian.PutUint16(b2[:], uint16(len(channel)))
	frame = append(frame, b2[:]...)
	frame = append(frame, channel...)
	frame = append(frame, wire...)

	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := c.Write(frame); err != nil {
		delete(e.conns, to)
		c.Close()
		return fmt.Errorf("network: write to node %d: %w", to, err)
	}
	return nil
}

// Recv blocks for the next message on channel.
func (e *TCPEndpoint) Recv(channel string) (Message, error) {
	select {
	case msg := <-e.box(channel):
		return msg, nil
	case <-e.closed:
		select {
		case msg := <-e.box(channel):
			return msg, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

// Close shuts the listener and all connections.
func (e *TCPEndpoint) Close() error {
	e.once.Do(func() {
		close(e.closed)
		e.listener.Close()
		e.mu.Lock()
		for _, c := range e.conns {
			c.Close()
		}
		e.conns = map[int]net.Conn{}
		e.mu.Unlock()
	})
	return nil
}
