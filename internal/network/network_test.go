package network

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFabricSendRecv(t *testing.T) {
	f := NewFabric([]int{0, 1, 2}, 16)
	defer f.CloseAll()
	e0, _ := f.Endpoint(0)
	e1, _ := f.Endpoint(1)

	if err := e0.Send(1, 1, "ch", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	msg, err := e1.Recv("ch")
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 0 || msg.Dest != 1 || string(msg.Payload) != "hello" {
		t.Errorf("msg = %+v", msg)
	}
}

func TestFabricChannelsIsolated(t *testing.T) {
	f := NewFabric([]int{0, 1}, 16)
	defer f.CloseAll()
	e0, _ := f.Endpoint(0)
	e1, _ := f.Endpoint(1)
	e0.Send(1, 1, "a", []byte("on-a"))
	e0.Send(1, 1, "b", []byte("on-b"))
	mb, _ := e1.Recv("b")
	ma, _ := e1.Recv("a")
	if string(mb.Payload) != "on-b" || string(ma.Payload) != "on-a" {
		t.Errorf("channel isolation broken: %q %q", mb.Payload, ma.Payload)
	}
}

func TestFabricUnknownNode(t *testing.T) {
	f := NewFabric([]int{0}, 4)
	defer f.CloseAll()
	e0, _ := f.Endpoint(0)
	if err := e0.Send(99, 99, "ch", nil); err == nil {
		t.Error("send to unknown node should fail")
	}
	if _, err := f.Endpoint(99); err == nil {
		t.Error("unknown endpoint should fail")
	}
}

func TestFabricCloseUnblocksRecv(t *testing.T) {
	f := NewFabric([]int{0}, 4)
	e0, _ := f.Endpoint(0)
	done := make(chan error, 1)
	go func() {
		_, err := e0.Recv("ch")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	e0.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("recv after close = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestFabricDrainAfterClose(t *testing.T) {
	f := NewFabric([]int{0, 1}, 4)
	e0, _ := f.Endpoint(0)
	e1, _ := f.Endpoint(1)
	e0.Send(1, 1, "ch", []byte("x"))
	e1.Close()
	msg, err := e1.Recv("ch")
	if err != nil || string(msg.Payload) != "x" {
		t.Errorf("delivered message lost on close: %v %v", msg, err)
	}
	if _, err := e1.Recv("ch"); err != ErrClosed {
		t.Errorf("empty mailbox after close should report closed, got %v", err)
	}
}

func TestFabricBackpressure(t *testing.T) {
	f := NewFabric([]int{0, 1}, 1)
	defer f.CloseAll()
	e0, _ := f.Endpoint(0)
	e1, _ := f.Endpoint(1)
	e0.Send(1, 1, "ch", []byte("1"))
	sent := make(chan struct{})
	go func() {
		e0.Send(1, 1, "ch", []byte("2")) // blocks until consumer reads
		close(sent)
	}()
	select {
	case <-sent:
		t.Fatal("second send should block on full mailbox")
	case <-time.After(30 * time.Millisecond):
	}
	e1.Recv("ch")
	select {
	case <-sent:
	case <-time.After(2 * time.Second):
		t.Fatal("send never unblocked")
	}
}

func TestMeterAccounting(t *testing.T) {
	f := NewFabric([]int{0, 1, 2}, 16)
	defer f.CloseAll()
	e0, _ := f.Endpoint(0)
	e1, _ := f.Endpoint(1)
	e0.Send(1, 1, "ch", make([]byte, 100))
	e0.Send(1, 1, "ch", make([]byte, 50))
	e0.Send(2, 2, "ch", make([]byte, 25))
	e1.Send(0, 0, "ch", make([]byte, 10))

	m := f.Meter()
	if m.TotalBytes() != 185 {
		t.Errorf("bytes = %d", m.TotalBytes())
	}
	if m.TotalMessages() != 4 {
		t.Errorf("messages = %d", m.TotalMessages())
	}
	if m.Connections() != 3 {
		t.Errorf("connections = %d (0->1, 0->2, 1->0)", m.Connections())
	}
	// Node 0 talked with 1 and 2; nodes 1,2 each only with 0.
	if m.MaxNodeDegree() != 2 {
		t.Errorf("max degree = %d", m.MaxNodeDegree())
	}
	links := m.PerLink()
	if len(links) != 3 || links[0].From != 0 || links[0].To != 1 || links[0].Stats.Bytes != 150 {
		t.Errorf("per-link = %+v", links)
	}
	m.Reset()
	if m.TotalBytes() != 0 || m.Connections() != 0 {
		t.Error("reset did not clear meter")
	}
}

func TestMeterScope(t *testing.T) {
	f := NewFabric([]int{0, 1, 2}, 16)
	defer f.CloseAll()
	e0, _ := f.Endpoint(0)
	e1, _ := f.Endpoint(1)

	s1 := f.Meter().Scope("q1.")
	s2 := f.Meter().Scope("q2.")
	defer s2.Close()

	e0.Send(1, 1, "q1.shuffle0", make([]byte, 100))
	e0.Send(2, 2, "q2.shuffle0", make([]byte, 40))
	e1.Send(0, 0, "q1.gather0", make([]byte, 7))
	e0.Send(1, 1, "ctl", make([]byte, 1000)) // matches no scope

	if s1.TotalBytes() != 107 || s1.TotalMessages() != 2 {
		t.Errorf("scope1 = %dB/%d msgs", s1.TotalBytes(), s1.TotalMessages())
	}
	if s1.Connections() != 2 || s1.MaxNodeDegree() != 1 {
		t.Errorf("scope1 links = %d degree = %d", s1.Connections(), s1.MaxNodeDegree())
	}
	if s2.TotalBytes() != 40 {
		t.Errorf("scope2 = %dB", s2.TotalBytes())
	}
	// Sub-query prefix joins an existing scope.
	s1.AddPrefix("q3.")
	e0.Send(1, 1, "q3.sub", make([]byte, 5))
	if s1.TotalBytes() != 112 {
		t.Errorf("scope1 after AddPrefix = %dB", s1.TotalBytes())
	}
	// After Close traffic no longer accrues but totals stay readable.
	s1.Close()
	e0.Send(1, 1, "q1.late", make([]byte, 99))
	if s1.TotalBytes() != 112 {
		t.Errorf("closed scope accrued traffic: %dB", s1.TotalBytes())
	}
	// Scopes survive a cumulative Reset.
	f.Meter().Reset()
	if s2.TotalBytes() != 40 {
		t.Errorf("scope2 lost data on Reset: %dB", s2.TotalBytes())
	}
	// Nil scope is inert (disabled-metering fast path).
	var nilScope *MeterScope
	nilScope.AddPrefix("x")
	nilScope.Close()
	if nilScope.TotalBytes() != 0 || nilScope.Connections() != 0 || nilScope.MaxNodeDegree() != 0 {
		t.Error("nil scope must read zero")
	}
}

func TestTCPMeter(t *testing.T) {
	peers := map[int]string{}
	e0, err := NewTCPEndpoint(0, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}
	defer e0.Close()
	e1, err := NewTCPEndpoint(1, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	peers[0] = e0.Addr()
	peers[1] = e1.Addr()

	m := NewMeter()
	e0.SetMeter(m)
	e1.SetMeter(m)
	if err := e0.Send(1, 1, "q1.ch", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Recv("q1.ch"); err != nil {
		t.Fatal(err)
	}
	if m.TotalBytes() != 64 || m.TotalMessages() != 1 || m.Connections() != 1 {
		t.Errorf("meter = %dB/%d msgs/%d links", m.TotalBytes(), m.TotalMessages(), m.Connections())
	}
}

// TestTCPCompressedRoundTrip sends compressible, incompressible, and empty
// payloads through a compressing endpoint to a plain receiver: delivery
// must be byte-identical, the meter must record raw payload sizes, and
// only the compressible payload may shrink on the wire.
func TestTCPCompressedRoundTrip(t *testing.T) {
	peers := map[int]string{}
	e0, err := NewTCPEndpoint(0, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}
	defer e0.Close()
	e1, err := NewTCPEndpoint(1, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	peers[0] = e0.Addr()
	peers[1] = e1.Addr()

	m := NewMeter()
	e0.SetMeter(m)
	e0.EnableCompression()

	compressible := bytes.Repeat([]byte("hrdbms shuffle frame "), 100)
	incompressible := make([]byte, 256)
	for i := range incompressible {
		incompressible[i] = byte(i*131 + 17)
	}
	payloads := [][]byte{compressible, incompressible, {}}
	for _, p := range payloads {
		if err := e0.Send(1, 1, "q1.comp", p); err != nil {
			t.Fatal(err)
		}
		msg, err := e1.Recv("q1.comp")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(msg.Payload, p) {
			t.Fatalf("payload mismatch: got %d bytes, want %d", len(msg.Payload), len(p))
		}
	}
	wantRaw := int64(len(compressible) + len(incompressible))
	if m.TotalBytes() != wantRaw {
		t.Errorf("meter bytes = %d, want raw %d", m.TotalBytes(), wantRaw)
	}
	raw, wire := m.CompressedBytes()
	if raw != wantRaw {
		t.Errorf("compressed accounting raw = %d, want %d", raw, wantRaw)
	}
	if wire >= raw {
		t.Errorf("wire %d not smaller than raw %d despite compressible payload", wire, raw)
	}
	if wire < int64(len(incompressible)) {
		t.Errorf("incompressible payload must ship raw: wire=%d", wire)
	}
	m.Reset()
	if r, w := m.CompressedBytes(); r != 0 || w != 0 {
		t.Errorf("Reset left compression counters %d/%d", r, w)
	}
}

func TestFabricConcurrentTraffic(t *testing.T) {
	const n = 8
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	f := NewFabric(ids, 64)
	defer f.CloseAll()

	var wg sync.WaitGroup
	recvCounts := make([]int, n)
	// Receivers: each expects n-1 messages.
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _ := f.Endpoint(i)
			for j := 0; j < n-1; j++ {
				if _, err := e.Recv("all"); err != nil {
					t.Errorf("node %d recv: %v", i, err)
					return
				}
				recvCounts[i]++
			}
		}(i)
	}
	// Senders: everyone sends to everyone else.
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _ := f.Endpoint(i)
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if err := e.Send(j, j, "all", []byte{byte(i)}); err != nil {
					t.Errorf("node %d send: %v", i, err)
				}
			}
		}(i)
	}
	wg.Wait()
	for i, c := range recvCounts {
		if c != n-1 {
			t.Errorf("node %d received %d", i, c)
		}
	}
	if f.Meter().Connections() != n*(n-1) {
		t.Errorf("connections = %d, want %d", f.Meter().Connections(), n*(n-1))
	}
}

func TestTCPEndpointRoundTrip(t *testing.T) {
	peers := map[int]string{}
	e0, err := NewTCPEndpoint(0, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}
	defer e0.Close()
	e1, err := NewTCPEndpoint(1, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	peers[0] = e0.Addr()
	peers[1] = e1.Addr()

	if err := e0.Send(1, 1, "query", []byte("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	msg, err := e1.Recv("query")
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 0 || string(msg.Payload) != "SELECT 1" {
		t.Errorf("msg = %+v", msg)
	}
	// Reply on another channel.
	if err := e1.Send(0, 0, "result", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	reply, err := e0.Recv("result")
	if err != nil || string(reply.Payload) != "ok" {
		t.Errorf("reply = %+v err=%v", reply, err)
	}
}

func TestTCPEndpointManyMessages(t *testing.T) {
	peers := map[int]string{}
	e0, _ := NewTCPEndpoint(0, "127.0.0.1:0", peers)
	defer e0.Close()
	e1, _ := NewTCPEndpoint(1, "127.0.0.1:0", peers)
	defer e1.Close()
	peers[0] = e0.Addr()
	peers[1] = e1.Addr()

	const count = 500
	go func() {
		for i := 0; i < count; i++ {
			e0.Send(1, 1, "bulk", []byte(fmt.Sprintf("m%04d", i)))
		}
	}()
	for i := 0; i < count; i++ {
		msg, err := e1.Recv("bulk")
		if err != nil {
			t.Fatal(err)
		}
		if string(msg.Payload) != fmt.Sprintf("m%04d", i) {
			t.Fatalf("message %d out of order: %q", i, msg.Payload)
		}
	}
}

func TestTCPSendUnknownPeer(t *testing.T) {
	e0, _ := NewTCPEndpoint(0, "127.0.0.1:0", map[int]string{})
	defer e0.Close()
	if err := e0.Send(5, 5, "x", nil); err == nil {
		t.Error("send to unknown peer should fail")
	}
}

func TestTCPCloseUnblocks(t *testing.T) {
	e0, _ := NewTCPEndpoint(0, "127.0.0.1:0", map[int]string{})
	done := make(chan error, 1)
	go func() {
		_, err := e0.Recv("never")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	e0.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("recv = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}
