// Package network provides the communication fabric between HRDBMS nodes.
//
// Two transports implement the same Endpoint interface: an in-process
// fabric used by the simulated cluster (with full metering of bytes,
// messages, and distinct connections, which the perfmodel package converts
// into simulated time), and a TCP transport for real deployments
// (cmd/hrdbms-server).
//
// Messages are addressed datagrams on named logical channels; shuffle,
// 2PC, and query dispatch each use their own channel namespace. Mailboxes
// are bounded, so a slow consumer backpressures senders the way the
// paper's pipelined engine expects.
package network

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Message is one delivered datagram.
type Message struct {
	From    int
	Dest    int // final destination (differs from the receiving node when forwarded via a hub)
	Channel string
	Payload []byte
}

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("network: endpoint closed")

// Endpoint is one node's attachment to the fabric.
type Endpoint interface {
	NodeID() int
	// Send delivers payload to the mailbox (to, channel). It may block for
	// backpressure. dest is the final destination recorded in the message
	// (pass to for direct sends).
	Send(to, dest int, channel string, payload []byte) error
	// Recv blocks until a message arrives on channel or the endpoint closes.
	Recv(channel string) (Message, error)
	// Close shuts the endpoint; blocked Recv/Send calls return ErrClosed.
	Close() error
}

// LinkStats accumulates traffic for one directed (from, to) pair.
type LinkStats struct {
	Messages int64
	Bytes    int64
}

// linkMap is the shared link-statistics table behind both the fabric-wide
// Meter and per-query MeterScopes. Callers hold the owning mutex.
type linkMap map[[2]int]*LinkStats

func (l linkMap) record(from, to int, bytes int) {
	k := [2]int{from, to}
	ls := l[k]
	if ls == nil {
		ls = &LinkStats{}
		l[k] = ls
	}
	ls.Messages++
	ls.Bytes += int64(bytes)
}

func (l linkMap) totalBytes() int64 {
	var total int64
	for _, ls := range l {
		total += ls.Bytes
	}
	return total
}

func (l linkMap) totalMessages() int64 {
	var total int64
	for _, ls := range l {
		total += ls.Messages
	}
	return total
}

func (l linkMap) maxNodeDegree() int {
	peers := map[int]map[int]bool{}
	add := func(a, b int) {
		if peers[a] == nil {
			peers[a] = map[int]bool{}
		}
		peers[a][b] = true
	}
	for k := range l {
		add(k[0], k[1])
		add(k[1], k[0])
	}
	max := 0
	for _, p := range peers {
		if len(p) > max {
			max = len(p)
		}
	}
	return max
}

// Meter records fabric-wide communication statistics. It is shared by all
// endpoints of an in-process cluster (and optionally attached to TCP
// endpoints) and read by the performance model. Per-query accounting uses
// Scope, which attributes messages by their channel-name prefix — channels
// embed the query ID, so concurrent queries meter independently without
// resetting shared state.
type Meter struct {
	mu       sync.Mutex
	links    linkMap
	scopes   []*MeterScope
	compRaw  int64 // raw payload bytes of frames sent through a compressing endpoint
	compWire int64 // bytes those frames actually occupied on the wire
}

// NewMeter creates an empty meter.
func NewMeter() *Meter { return &Meter{links: linkMap{}} }

func (m *Meter) record(from, to int, channel string, bytes int) {
	if from == to {
		return // loopback delivery is not a network connection
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.links.record(from, to, bytes)
	for _, s := range m.scopes {
		if s.matches(channel) {
			s.links.record(from, to, bytes)
		}
	}
}

// recordCompression accounts one frame sent through a compressing TCP
// endpoint: raw is the uncompressed payload size (what links/scopes see),
// wire what the frame body actually carried. Loopback sends never reach
// here — TCP endpoints dial even for self-sends, and the in-process fabric
// does not compress.
func (m *Meter) recordCompression(raw, wire int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compRaw += int64(raw)
	m.compWire += int64(wire)
}

// CompressedBytes reports compression effectiveness for TCP endpoints with
// EnableCompression: total raw payload bytes and the wire bytes they
// shipped as. Both are zero when no compressing endpoint sent traffic.
func (m *Meter) CompressedBytes() (raw, wire int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compRaw, m.compWire
}

// Scope starts per-query metering: every message whose channel name starts
// with one of the prefixes is additionally recorded into the returned
// scope until Close. Scopes read exactly their own query's traffic, so
// concurrent metered queries do not disturb each other.
func (m *Meter) Scope(prefixes ...string) *MeterScope {
	s := &MeterScope{m: m, prefixes: append([]string(nil), prefixes...), links: linkMap{}}
	m.mu.Lock()
	m.scopes = append(m.scopes, s)
	m.mu.Unlock()
	return s
}

// MeterScope collects the subset of fabric traffic whose channel names
// match its prefixes (one prefix per query, plus one per materialized
// subquery). Guarded by the parent meter's mutex.
type MeterScope struct {
	m        *Meter
	prefixes []string
	links    linkMap
}

// matches reports whether a channel belongs to this scope. Caller holds
// m.mu.
func (s *MeterScope) matches(channel string) bool {
	for _, p := range s.prefixes {
		if len(channel) >= len(p) && channel[:len(p)] == p {
			return true
		}
	}
	return false
}

// AddPrefix extends the scope to another channel prefix (used when a query
// materializes scalar subqueries under their own query IDs). Nil-safe.
func (s *MeterScope) AddPrefix(p string) {
	if s == nil {
		return
	}
	s.m.mu.Lock()
	s.prefixes = append(s.prefixes, p)
	s.m.mu.Unlock()
}

// TotalBytes returns bytes attributed to this scope.
func (s *MeterScope) TotalBytes() int64 {
	if s == nil {
		return 0
	}
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	return s.links.totalBytes()
}

// TotalMessages returns messages attributed to this scope.
func (s *MeterScope) TotalMessages() int64 {
	if s == nil {
		return 0
	}
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	return s.links.totalMessages()
}

// Connections returns the number of distinct directed links this scope's
// traffic used.
func (s *MeterScope) Connections() int {
	if s == nil {
		return 0
	}
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	return len(s.links)
}

// MaxNodeDegree returns the largest per-node peer count within the scope.
func (s *MeterScope) MaxNodeDegree() int {
	if s == nil {
		return 0
	}
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	return s.links.maxNodeDegree()
}

// Close detaches the scope from the meter; its totals stay readable.
func (s *MeterScope) Close() {
	if s == nil {
		return
	}
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	for i, sc := range s.m.scopes {
		if sc == s {
			s.m.scopes = append(s.m.scopes[:i], s.m.scopes[i+1:]...)
			return
		}
	}
}

// Connections returns the number of distinct directed links used.
func (m *Meter) Connections() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.links)
}

// TotalBytes returns the total bytes sent over all links.
func (m *Meter) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.links.totalBytes()
}

// TotalMessages returns the number of messages sent.
func (m *Meter) TotalMessages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.links.totalMessages()
}

// MaxNodeDegree returns the largest number of distinct peers any single
// node communicated with (in either direction) — the quantity HRDBMS's
// topologies bound by Nmax.
func (m *Meter) MaxNodeDegree() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.links.maxNodeDegree()
}

// PerLink returns a deterministic snapshot of all link stats.
func (m *Meter) PerLink() []struct {
	From, To int
	Stats    LinkStats
} {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]struct {
		From, To int
		Stats    LinkStats
	}, 0, len(m.links))
	for k, ls := range m.links {
		out = append(out, struct {
			From, To int
			Stats    LinkStats
		}{k[0], k[1], *ls})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Reset clears the cumulative statistics. Active scopes are unaffected:
// per-query accounting no longer depends on resetting shared state.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.links = linkMap{}
	m.compRaw, m.compWire = 0, 0
}

// Fabric is the in-process transport: a set of endpoints with bounded
// mailboxes, metered centrally.
type Fabric struct {
	mu         sync.Mutex
	endpoints  map[int]*inprocEndpoint
	meter      *Meter
	mailboxCap int
}

// NewFabric creates an in-process fabric for the given node IDs.
func NewFabric(nodeIDs []int, mailboxCap int) *Fabric {
	if mailboxCap < 1 {
		mailboxCap = 1024
	}
	f := &Fabric{endpoints: map[int]*inprocEndpoint{}, meter: NewMeter(), mailboxCap: mailboxCap}
	for _, id := range nodeIDs {
		f.endpoints[id] = &inprocEndpoint{
			id:     id,
			fabric: f,
			boxes:  map[string]chan Message{},
			closed: make(chan struct{}),
		}
	}
	return f
}

// Meter returns the fabric's shared meter.
func (f *Fabric) Meter() *Meter { return f.meter }

// Endpoint returns the endpoint of the given node.
func (f *Fabric) Endpoint(id int) (Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.endpoints[id]
	if !ok {
		return nil, fmt.Errorf("network: unknown node %d", id)
	}
	return e, nil
}

// ReleasePrefix drops every mailbox whose channel name starts with prefix,
// on every endpoint. Mailboxes are created lazily per (endpoint, channel)
// and would otherwise live for the fabric's lifetime; a serving cluster
// runs thousands of queries, each with its own "q<qid>." channel
// namespace, so the query path releases the namespace when the query ends
// to keep fabric memory bounded. A straggling send after release simply
// recreates an empty (and unread) mailbox — harmless, the EOF protocol has
// already completed by then.
func (f *Fabric) ReleasePrefix(prefix string) {
	if prefix == "" {
		return
	}
	f.mu.Lock()
	eps := make([]*inprocEndpoint, 0, len(f.endpoints))
	for _, e := range f.endpoints {
		eps = append(eps, e)
	}
	f.mu.Unlock()
	for _, e := range eps {
		e.mu.Lock()
		for ch := range e.boxes {
			if len(ch) >= len(prefix) && ch[:len(prefix)] == prefix {
				delete(e.boxes, ch)
			}
		}
		e.mu.Unlock()
	}
}

// CloseAll shuts every endpoint.
func (f *Fabric) CloseAll() {
	f.mu.Lock()
	eps := make([]*inprocEndpoint, 0, len(f.endpoints))
	for _, e := range f.endpoints {
		eps = append(eps, e)
	}
	f.mu.Unlock()
	for _, e := range eps {
		e.Close()
	}
}

type inprocEndpoint struct {
	id     int
	fabric *Fabric
	mu     sync.Mutex
	boxes  map[string]chan Message
	closed chan struct{}
	once   sync.Once
}

func (e *inprocEndpoint) NodeID() int { return e.id }

func (e *inprocEndpoint) box(channel string) chan Message {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.boxes[channel]
	if !ok {
		b = make(chan Message, e.fabric.mailboxCap)
		e.boxes[channel] = b
	}
	return b
}

func (e *inprocEndpoint) Send(to, dest int, channel string, payload []byte) error {
	e.fabric.mu.Lock()
	target, ok := e.fabric.endpoints[to]
	e.fabric.mu.Unlock()
	if !ok {
		return fmt.Errorf("network: send to unknown node %d", to)
	}
	select {
	case <-e.closed:
		return ErrClosed
	default:
	}
	e.fabric.meter.record(e.id, to, channel, len(payload))
	msg := Message{From: e.id, Dest: dest, Channel: channel, Payload: payload}
	select {
	case target.box(channel) <- msg:
		return nil
	case <-target.closed:
		return ErrClosed
	case <-e.closed:
		return ErrClosed
	}
}

func (e *inprocEndpoint) Recv(channel string) (Message, error) {
	select {
	case msg := <-e.box(channel):
		return msg, nil
	case <-e.closed:
		// Drain anything already delivered before reporting closure.
		select {
		case msg := <-e.box(channel):
			return msg, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (e *inprocEndpoint) Close() error {
	e.once.Do(func() { close(e.closed) })
	return nil
}
