// Package testutil holds small shared test helpers. It must stay
// stdlib-only and free of dependencies on the rest of the repo so any
// package can import it.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// AssertNoGoroutineLeak records the current goroutine count and registers a
// cleanup that fails the test if, after a grace period, more goroutines are
// running than at the start. Call it at the top of a test, BEFORE any
// cleanup that stops the system under test — t.Cleanup runs LIFO, so the
// shutdown happens first and this check observes the settled state.
//
// The count-based check is deliberately coarse (the runtime and sibling
// parallel tests can own goroutines too), so the baseline is compared with
// retries rather than exactly once.
func AssertNoGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after shutdown\n%s", before, after, buf[:n])
		}
	})
}
