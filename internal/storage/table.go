package storage

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/page"
	"repro/internal/skipcache"
	"repro/internal/types"
)

// TxHook lets the transaction layer intercept storage mutations: page
// locking plus WAL logging. A nil TxHook means an untracked bulk operation
// (loading), which the paper also performs outside transactions.
type TxHook interface {
	TxID() uint64
	// LockPage acquires a page lock (exclusive for mutations). Returns an
	// error on deadlock/timeout, which aborts the statement.
	LockPage(k page.Key, exclusive bool) error
	// LogInsert/LogDelete append WAL records and return the new record's
	// LSN to stamp into the page.
	LogInsert(k page.Key, slot uint16, encRow []byte) uint64
	LogDelete(k page.Key, slot uint16, encRow []byte) uint64
}

// ScanStats reports what one table scan did, feeding both the predicate
// cache experiments and the performance model.
type ScanStats struct {
	PagesRead    int64
	PagesSkipped int64
	RowsRead     int64
}

// Fragment is the part of one table stored on one node: one page file per
// disk. Rows are routed to disks by round-robin at load/insert time.
type Fragment struct {
	Node  *NodeStore
	Def   *catalog.TableDef
	Files []page.FileID // one per disk

	// Skipping state shared across scans of this fragment.
	PredCache *skipcache.Cache
	MinMax    *skipcache.MinMax

	insertSeq atomic.Int64 // round-robin disk pointer
}

// OpenFragment creates (or reopens) the fragment's per-disk page files and
// reloads any persisted predicate cache (Section III: caches are persisted
// periodically and loaded at database restart).
func OpenFragment(ns *NodeStore, def *catalog.TableDef) (*Fragment, error) {
	fr := &Fragment{
		Node:      ns,
		Def:       def,
		PredCache: skipcache.NewCache(64),
		MinMax:    skipcache.NewMinMax(),
	}
	for d := range ns.Disks {
		name := fmt.Sprintf("%s.d%d.tbl", strings.ToLower(def.Name), d)
		id, err := ns.OpenFile(d, name, true)
		if err != nil {
			return nil, err
		}
		fr.Files = append(fr.Files, id)
	}
	if cached, err := skipcache.Load(fr.predCachePath(), 64); err == nil {
		fr.PredCache = cached
	}
	return fr, nil
}

// predCachePath is the fragment's persisted predicate-cache location.
func (fr *Fragment) predCachePath() string {
	return filepath.Join(fr.Node.Disks[0], strings.ToLower(fr.Def.Name)+".predcache")
}

// PersistPredCache writes the predicate cache to disk for reload at the
// next restart.
func (fr *Fragment) PersistPredCache() error {
	return fr.PredCache.Persist(fr.predCachePath())
}

// Insert appends a row to the fragment, choosing a disk round-robin, and
// returns the row's RID. Append-only: the row goes on the last page of the
// disk's file or a fresh page (the paper's append-only insert rule that
// keeps predicate caches valid for full pages).
func (fr *Fragment) Insert(tx TxHook, r types.Row) (page.RID, error) {
	if len(r) != fr.Def.Schema.Len() {
		return page.RID{}, fmt.Errorf("storage: row arity %d != schema %d for %s", len(r), fr.Def.Schema.Len(), fr.Def.Name)
	}
	disk := int(fr.insertSeq.Add(1)-1) % len(fr.Files)
	fileID := fr.Files[disk]
	enc := types.AppendRow(nil, r)

	// Try the last allocated page first.
	numPages := fr.Node.NumPages(fileID)
	tryPage := func(pageNum uint32) (page.RID, bool, error) {
		k := page.Key{File: fileID, Page: pageNum}
		if tx != nil {
			if err := tx.LockPage(k, true); err != nil {
				return page.RID{}, false, err
			}
		}
		f, err := fr.Node.Buf.Fetch(k)
		if err != nil {
			return page.RID{}, false, err
		}
		if page.TypeOf(f.Buf) == page.TypeFree {
			page.InitRowPage(f.Buf)
		}
		rp, err := page.AsRowPage(f.Buf)
		if err != nil {
			fr.Node.Buf.Unpin(f, false)
			return page.RID{}, false, err
		}
		slot, ok := rp.InsertEncoded(enc)
		if !ok {
			fr.Node.Buf.Unpin(f, false)
			return page.RID{}, false, nil
		}
		if tx != nil {
			lsn := tx.LogInsert(k, uint16(slot), enc)
			page.SetLSN(f.Buf, lsn)
		}
		fr.Node.Buf.Unpin(f, true)
		// Maintain min-max SMA for the page.
		for ci, col := range fr.Def.Schema.Cols {
			fr.MinMax.Record(k, strings.ToLower(col.Name), r[ci])
		}
		return page.RID{Node: uint16(fr.Node.NodeID), Disk: uint16(disk), Page: pageNum, Slot: uint16(slot)}, true, nil
	}
	if numPages > 0 {
		rid, ok, err := tryPage(numPages - 1)
		if err != nil {
			return page.RID{}, err
		}
		if ok {
			return rid, nil
		}
	}
	newPage := fr.Node.Allocate(fileID)
	rid, ok, err := tryPage(newPage)
	if err != nil {
		return page.RID{}, err
	}
	if !ok {
		return page.RID{}, fmt.Errorf("storage: row of %d bytes does not fit an empty page", len(enc))
	}
	return rid, nil
}

// Get fetches a row by RID.
func (fr *Fragment) Get(rid page.RID) (types.Row, bool, error) {
	if int(rid.Disk) >= len(fr.Files) {
		return nil, false, fmt.Errorf("storage: rid disk %d out of range", rid.Disk)
	}
	k := page.Key{File: fr.Files[rid.Disk], Page: rid.Page}
	f, err := fr.Node.Buf.Fetch(k)
	if err != nil {
		return nil, false, err
	}
	defer fr.Node.Buf.Unpin(f, false)
	rp, err := page.AsRowPage(f.Buf)
	if err != nil {
		return nil, false, err
	}
	return rp.Get(int(rid.Slot))
}

// Delete tombstones a row (out-of-place, as in the paper).
func (fr *Fragment) Delete(tx TxHook, rid page.RID) (bool, error) {
	if int(rid.Disk) >= len(fr.Files) {
		return false, fmt.Errorf("storage: rid disk %d out of range", rid.Disk)
	}
	k := page.Key{File: fr.Files[rid.Disk], Page: rid.Page}
	if tx != nil {
		if err := tx.LockPage(k, true); err != nil {
			return false, err
		}
	}
	f, err := fr.Node.Buf.Fetch(k)
	if err != nil {
		return false, err
	}
	rp, err := page.AsRowPage(f.Buf)
	if err != nil {
		fr.Node.Buf.Unpin(f, false)
		return false, err
	}
	var before []byte
	if enc := rp.GetEncoded(int(rid.Slot)); enc != nil {
		before = append([]byte(nil), enc...)
	}
	ok := rp.Delete(int(rid.Slot))
	if ok && tx != nil {
		lsn := tx.LogDelete(k, rid.Slot, before)
		page.SetLSN(f.Buf, lsn)
	}
	fr.Node.Buf.Unpin(f, ok)
	// A delete invalidates cached absence proofs? No — deletes only remove
	// rows, so "no rows match θ" stays true. Min-max also stays sound
	// (ranges may only be wider than reality). Nothing to invalidate.
	return ok, nil
}

// ScanOptions configures a fragment scan.
type ScanOptions struct {
	// SkipConj is the skippable form of the scan predicate; empty disables
	// predicate-based skipping for this scan.
	SkipConj skipcache.Conj
	// SkipComplete reports whether SkipConj is the COMPLETE predicate (all
	// conjuncts convertible); only then may the scan record new absence
	// facts into the predicate cache.
	SkipComplete bool
	// UseCache enables consulting/updating the predicate cache.
	UseCache bool
	// UseMinMax enables min-max SMA skipping (the baseline scheme).
	UseMinMax bool
	// Predeclare pre-declares upcoming pages to the buffer manager.
	Predeclare bool
	// Tx, when set, takes page locks for serializable reads (shared by
	// default; exclusive when LockExclusive is set — the write-intent mode
	// UPDATE/DELETE scans use so concurrent writers serialize without
	// upgrade deadlocks).
	Tx            TxHook
	LockExclusive bool
}

// Scan iterates the live rows of every full and partial page of the
// fragment, honoring predicate-based skipping, and records new absence
// facts for full pages. fn returning false stops the scan early (skipping
// bookkeeping for the interrupted page is discarded).
func (fr *Fragment) Scan(opts ScanOptions, fn func(rid page.RID, r types.Row) bool) (ScanStats, error) {
	var stats ScanStats
	lowerCols := make([]string, fr.Def.Schema.Len())
	for i, c := range fr.Def.Schema.Cols {
		lowerCols[i] = strings.ToLower(c.Name)
	}
	colIndex := func(name string) int { return fr.Def.Schema.Find(name) }

	for disk, fileID := range fr.Files {
		numPages := fr.Node.NumPages(fileID)
		if numPages == 0 {
			continue
		}
		// Scan pre-declaration: tell the buffer manager which pages we
		// will request so the clock protects them (Section III).
		if opts.Predeclare {
			keys := make([]page.Key, 0, numPages)
			for p := uint32(0); p < numPages; p++ {
				keys = append(keys, page.Key{File: fileID, Page: p})
			}
			fr.Node.Buf.Predeclare(keys)
		}
		for p := uint32(0); p < numPages; p++ {
			k := page.Key{File: fileID, Page: p}
			if len(opts.SkipConj) > 0 {
				if opts.UseCache && fr.PredCache.CanSkip(k, opts.SkipConj) {
					stats.PagesSkipped++
					continue
				}
				if opts.UseMinMax && fr.MinMax.CanSkip(k, opts.SkipConj) {
					stats.PagesSkipped++
					continue
				}
			}
			if opts.Tx != nil {
				if err := opts.Tx.LockPage(k, opts.LockExclusive); err != nil {
					return stats, err
				}
			}
			f, err := fr.Node.Buf.Fetch(k)
			if err != nil {
				return stats, err
			}
			if page.TypeOf(f.Buf) == page.TypeFree {
				fr.Node.Buf.Unpin(f, false)
				continue
			}
			rp, err := page.AsRowPage(f.Buf)
			if err != nil {
				fr.Node.Buf.Unpin(f, false)
				return stats, err
			}
			stats.PagesRead++
			anyMatch := false
			stopped := false
			err = rp.Scan(func(slot int, r types.Row) bool {
				stats.RowsRead++
				if len(opts.SkipConj) > 0 && opts.SkipConj.MatchesRow(r, colIndex) {
					anyMatch = true
				}
				rid := page.RID{Node: uint16(fr.Node.NodeID), Disk: uint16(disk), Page: p, Slot: uint16(slot)}
				if !fn(rid, r) {
					stopped = true
					return false
				}
				return true
			})
			fr.Node.Buf.Unpin(f, false)
			if err != nil {
				return stats, err
			}
			if stopped {
				fr.Node.RowsScanned.Add(stats.RowsRead)
				return stats, nil
			}
			// Record an absence fact for FULL pages only (the last page of
			// a file may still receive inserts).
			isFull := p < numPages-1
			if opts.UseCache && opts.SkipComplete && isFull && !anyMatch && len(opts.SkipConj) > 0 {
				fr.PredCache.Record(k, opts.SkipConj)
			}
		}
	}
	fr.Node.RowsScanned.Add(stats.RowsRead)
	return stats, nil
}

// DefaultMorselPages is the page-range granularity ParallelScan hands to a
// worker at a time. Small enough that a skipping-heavy scan rebalances, large
// enough that the shared claim counter is off the per-page path.
const DefaultMorselPages = 16

// morsel is one contiguous page range of one disk's file, the unit of work a
// parallel scan worker claims. numPages is the file's page count at scan
// start, so workers can apply the full-page-only absence-recording rule.
type morsel struct {
	disk     int
	file     page.FileID
	start    uint32
	end      uint32 // exclusive
	numPages uint32
}

// ParallelScan is Scan with N workers: the fragment's pages are split into
// morsels (contiguous page ranges) that workers claim from a shared counter,
// so a worker that skips its pages moves on to the next range instead of
// idling. Each page is processed exactly as Scan processes it — predicate
// cache, then min-max, then fetch — and absence facts are recorded for full
// pages under the same conditions, so skipping behavior and the summed
// ScanStats match a serial scan of the same data. fn runs concurrently from
// all workers (worker tells them apart); returning false stops every worker
// after its current page. workers <= 1 degrades to the serial Scan.
func (fr *Fragment) ParallelScan(opts ScanOptions, workers, morselPages int, fn func(worker int, rid page.RID, r types.Row) bool) (ScanStats, error) {
	if workers <= 1 {
		return fr.Scan(opts, func(rid page.RID, r types.Row) bool { return fn(0, rid, r) })
	}
	if morselPages <= 0 {
		morselPages = DefaultMorselPages
	}
	var morsels []morsel
	for disk, fileID := range fr.Files {
		numPages := fr.Node.NumPages(fileID)
		if numPages == 0 {
			continue
		}
		if opts.Predeclare {
			keys := make([]page.Key, 0, numPages)
			for p := uint32(0); p < numPages; p++ {
				keys = append(keys, page.Key{File: fileID, Page: p})
			}
			fr.Node.Buf.Predeclare(keys)
		}
		for start := uint32(0); start < numPages; start += uint32(morselPages) {
			end := start + uint32(morselPages)
			if end > numPages {
				end = numPages
			}
			morsels = append(morsels, morsel{disk: disk, file: fileID, start: start, end: end, numPages: numPages})
		}
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		total    ScanStats
		firstErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var stats ScanStats
			for !stop.Load() {
				i := int(next.Add(1) - 1)
				if i >= len(morsels) {
					break
				}
				if err := fr.scanMorsel(opts, morsels[i], &stats, &stop, func(rid page.RID, r types.Row) bool {
					return fn(w, rid, r)
				}); err != nil {
					stop.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					break
				}
			}
			mu.Lock()
			total.PagesRead += stats.PagesRead
			total.PagesSkipped += stats.PagesSkipped
			total.RowsRead += stats.RowsRead
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	fr.Node.RowsScanned.Add(total.RowsRead)
	return total, firstErr
}

// scanMorsel runs one worker's claimed page range with Scan's exact per-page
// logic. stop is checked between pages so a consumer-initiated stop (fn
// returning false anywhere) ends every worker promptly; bookkeeping for a
// page interrupted mid-scan is discarded, as in Scan.
func (fr *Fragment) scanMorsel(opts ScanOptions, m morsel, stats *ScanStats, stop *atomic.Bool, fn func(rid page.RID, r types.Row) bool) error {
	colIndex := func(name string) int { return fr.Def.Schema.Find(name) }
	for p := m.start; p < m.end; p++ {
		if stop.Load() {
			return nil
		}
		k := page.Key{File: m.file, Page: p}
		if len(opts.SkipConj) > 0 {
			if opts.UseCache && fr.PredCache.CanSkip(k, opts.SkipConj) {
				stats.PagesSkipped++
				continue
			}
			if opts.UseMinMax && fr.MinMax.CanSkip(k, opts.SkipConj) {
				stats.PagesSkipped++
				continue
			}
		}
		if opts.Tx != nil {
			if err := opts.Tx.LockPage(k, opts.LockExclusive); err != nil {
				return err
			}
		}
		f, err := fr.Node.Buf.Fetch(k)
		if err != nil {
			return err
		}
		if page.TypeOf(f.Buf) == page.TypeFree {
			fr.Node.Buf.Unpin(f, false)
			continue
		}
		rp, err := page.AsRowPage(f.Buf)
		if err != nil {
			fr.Node.Buf.Unpin(f, false)
			return err
		}
		stats.PagesRead++
		anyMatch := false
		stopped := false
		err = rp.Scan(func(slot int, r types.Row) bool {
			stats.RowsRead++
			if len(opts.SkipConj) > 0 && opts.SkipConj.MatchesRow(r, colIndex) {
				anyMatch = true
			}
			rid := page.RID{Node: uint16(fr.Node.NodeID), Disk: uint16(m.disk), Page: p, Slot: uint16(slot)}
			if !fn(rid, r) {
				stopped = true
				return false
			}
			return true
		})
		fr.Node.Buf.Unpin(f, false)
		if err != nil {
			return err
		}
		if stopped {
			stop.Store(true)
			return nil
		}
		isFull := p < m.numPages-1
		if opts.UseCache && opts.SkipComplete && isFull && !anyMatch && len(opts.SkipConj) > 0 {
			fr.PredCache.Record(k, opts.SkipConj)
		}
	}
	return nil
}

// Load bulk-loads rows into the fragment, sorting by the table's clustering
// columns first (Section III: data is sorted during loading to enforce
// clustering). Returns the number of rows loaded.
func (fr *Fragment) Load(rows []types.Row) (int, error) {
	if len(fr.Def.ClusterCols) > 0 {
		offs, err := fr.Def.ColOffsets(fr.Def.ClusterCols)
		if err != nil {
			return 0, err
		}
		sorted := make([]types.Row, len(rows))
		copy(sorted, rows)
		sort.SliceStable(sorted, func(i, j int) bool {
			for _, o := range offs {
				if c := types.Compare(sorted[i][o], sorted[j][o]); c != 0 {
					return c < 0
				}
			}
			return false
		})
		rows = sorted
	}
	for i, r := range rows {
		if _, err := fr.Insert(nil, r); err != nil {
			return i, err
		}
	}
	return len(rows), nil
}

// Reorganize rewrites the fragment compacting tombstones and restoring
// clustering order, and invalidates all skipping state (the paper's table
// reorganization, which is what makes DML-disturbed clustering recoverable).
func (fr *Fragment) Reorganize() error {
	var live []types.Row
	if _, err := fr.Scan(ScanOptions{}, func(rid page.RID, r types.Row) bool {
		live = append(live, r.Clone())
		return true
	}); err != nil {
		return err
	}
	// Reset files: truncate by reopening allocation at zero and zeroing
	// pages through the buffer manager.
	for _, fileID := range fr.Files {
		numPages := fr.Node.NumPages(fileID)
		for p := uint32(0); p < numPages; p++ {
			k := page.Key{File: fileID, Page: p}
			f, err := fr.Node.Buf.Fetch(k)
			if err != nil {
				return err
			}
			for i := range f.Buf {
				f.Buf[i] = 0
			}
			page.InitRowPage(f.Buf)
			fr.Node.Buf.Unpin(f, true)
		}
		fr.PredCache.InvalidateFile(fileID)
		fr.Node.mu.Lock()
		fr.Node.nextAlloc[fileID] = 0
		fr.Node.mu.Unlock()
	}
	fr.MinMax = skipcache.NewMinMax()
	fr.insertSeq.Store(0)
	_, err := fr.Load(live)
	return err
}

// RowCount scans and counts live rows (used by ANALYZE and tests).
func (fr *Fragment) RowCount() (int64, error) {
	var n int64
	_, err := fr.Scan(ScanOptions{}, func(page.RID, types.Row) bool { n++; return true })
	return n, err
}
