package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/page"
	"repro/internal/skipcache"
	"repro/internal/types"
)

// ColumnarFragment stores a table fragment PAX-style (Section III): all
// columns in one file per disk as a sequence of page sets; a set for an
// n-column table is n consecutive pages, each holding the values of one
// column for the same run of rows. String pages are Huffman-packed when a
// set is sealed, and page-level LZ4 (in page.File) plus sparse-file holes
// absorb the unused space — together these implement the paper's fix for
// page-set underutilization.
//
// Inserts are append-only into the open (in-memory) set of one disk;
// deletes are not supported on columnar fragments (reload or reorganize
// instead), matching their OLAP role.
type ColumnarFragment struct {
	Node  *NodeStore
	Def   *catalog.TableDef
	Files []page.FileID

	PredCache *skipcache.Cache
	MinMax    *skipcache.MinMax

	open    []page.PageSet // one open set per disk
	openBuf [][][]byte     // backing buffers for the open sets
	nextRR  int
}

// OpenColumnarFragment creates the fragment's per-disk files.
func OpenColumnarFragment(ns *NodeStore, def *catalog.TableDef) (*ColumnarFragment, error) {
	fr := &ColumnarFragment{
		Node:      ns,
		Def:       def,
		PredCache: skipcache.NewCache(64),
		MinMax:    skipcache.NewMinMax(),
	}
	for d := range ns.Disks {
		name := fmt.Sprintf("%s.d%d.col", strings.ToLower(def.Name), d)
		id, err := ns.OpenFile(d, name, true)
		if err != nil {
			return nil, err
		}
		fr.Files = append(fr.Files, id)
	}
	fr.open = make([]page.PageSet, len(fr.Files))
	fr.openBuf = make([][][]byte, len(fr.Files))
	for d := range fr.Files {
		fr.resetOpen(d)
	}
	return fr, nil
}

func (fr *ColumnarFragment) resetOpen(disk int) {
	n := fr.Def.Schema.Len()
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = make([]byte, fr.Node.PageSize())
	}
	fr.openBuf[disk] = bufs
	fr.open[disk] = page.NewPageSet(bufs)
}

// Append adds one row to the open set of the next disk, flushing the set
// to disk when full.
func (fr *ColumnarFragment) Append(r types.Row) error {
	if len(r) != fr.Def.Schema.Len() {
		return fmt.Errorf("storage: columnar row arity %d != schema %d", len(r), fr.Def.Schema.Len())
	}
	disk := fr.nextRR % len(fr.Files)
	fr.nextRR++
	if fr.open[disk].AppendRow(r) {
		return nil
	}
	if err := fr.flushOpen(disk); err != nil {
		return err
	}
	if !fr.open[disk].AppendRow(r) {
		return fmt.Errorf("storage: columnar row too large for page size %d", fr.Node.PageSize())
	}
	return nil
}

// flushOpen seals and writes the open set of a disk as n consecutive pages.
func (fr *ColumnarFragment) flushOpen(disk int) error {
	set := fr.open[disk]
	if set.NumRows() == 0 {
		return nil
	}
	set.Seal()
	fileID := fr.Files[disk]
	n := fr.Def.Schema.Len()
	base := fr.Node.Allocate(fileID)
	for i := 1; i < n; i++ {
		fr.Node.Allocate(fileID)
	}
	// Record min-max for the set (keyed by its first page).
	key := page.Key{File: fileID, Page: base}
	rows, err := set.Rows()
	if err != nil {
		return err
	}
	for _, r := range rows {
		for ci, col := range fr.Def.Schema.Cols {
			fr.MinMax.Record(key, strings.ToLower(col.Name), r[ci])
		}
	}
	for i := 0; i < n; i++ {
		f, err := fr.Node.Buf.NewPage(page.Key{File: fileID, Page: base + uint32(i)})
		if err != nil {
			return err
		}
		copy(f.Buf, fr.openBuf[disk][i])
		fr.Node.Buf.Unpin(f, true)
	}
	fr.resetOpen(disk)
	return nil
}

// Flush writes all open sets to disk (call after bulk loading).
func (fr *ColumnarFragment) Flush() error {
	for d := range fr.Files {
		if err := fr.flushOpen(d); err != nil {
			return err
		}
	}
	return nil
}

// Load bulk-loads rows (sorting by clustering columns) and flushes.
func (fr *ColumnarFragment) Load(rows []types.Row) (int, error) {
	if len(fr.Def.ClusterCols) > 0 {
		offs, err := fr.Def.ColOffsets(fr.Def.ClusterCols)
		if err != nil {
			return 0, err
		}
		sorted := make([]types.Row, len(rows))
		copy(sorted, rows)
		sortRowsBy(sorted, offs)
		rows = sorted
	}
	for i, r := range rows {
		if err := fr.Append(r); err != nil {
			return i, err
		}
	}
	return len(rows), fr.Flush()
}

func sortRowsBy(rows []types.Row, offs []int) {
	if len(offs) == 0 {
		return
	}
	lessFn := func(i, j int) bool {
		for _, o := range offs {
			if c := types.Compare(rows[i][o], rows[j][o]); c != 0 {
				return c < 0
			}
		}
		return false
	}
	sort.SliceStable(rows, lessFn)
}

// Scan iterates every row of the fragment (flushed sets first, then open
// sets), with page-set-granular skipping.
func (fr *ColumnarFragment) Scan(opts ScanOptions, fn func(r types.Row) bool) (ScanStats, error) {
	var stats ScanStats
	n := fr.Def.Schema.Len()
	colIndex := func(name string) int { return fr.Def.Schema.Find(name) }
	for disk, fileID := range fr.Files {
		numPages := fr.Node.NumPages(fileID)
		numSets := int(numPages) / n
		for s := 0; s < numSets; s++ {
			base := uint32(s * n)
			key := page.Key{File: fileID, Page: base}
			if len(opts.SkipConj) > 0 {
				if opts.UseCache && fr.PredCache.CanSkip(key, opts.SkipConj) {
					stats.PagesSkipped += int64(n)
					continue
				}
				if opts.UseMinMax && fr.MinMax.CanSkip(key, opts.SkipConj) {
					stats.PagesSkipped += int64(n)
					continue
				}
			}
			frames := make([]*buffer.Frame, 0, n)
			set := page.PageSet{}
			bad := false
			for i := 0; i < n; i++ {
				f, err := fr.Node.Buf.Fetch(page.Key{File: fileID, Page: base + uint32(i)})
				if err != nil {
					for _, pf := range frames {
						fr.Node.Buf.Unpin(pf, false)
					}
					return stats, err
				}
				cp, err := page.AsColumnPage(f.Buf)
				if err != nil {
					fr.Node.Buf.Unpin(f, false)
					bad = true
					break
				}
				frames = append(frames, f)
				set.Pages = append(set.Pages, cp)
			}
			if bad {
				for _, pf := range frames {
					fr.Node.Buf.Unpin(pf, false)
				}
				continue
			}
			rows, err := set.Rows()
			for _, pf := range frames {
				fr.Node.Buf.Unpin(pf, false)
			}
			if err != nil {
				return stats, err
			}
			stats.PagesRead += int64(n)
			anyMatch := false
			for _, r := range rows {
				stats.RowsRead++
				if len(opts.SkipConj) > 0 && opts.SkipConj.MatchesRow(r, colIndex) {
					anyMatch = true
				}
				if !fn(r) {
					return stats, nil
				}
			}
			if opts.UseCache && opts.SkipComplete && !anyMatch && len(opts.SkipConj) > 0 {
				fr.PredCache.Record(key, opts.SkipConj)
			}
		}
		// Open (unflushed) set: never skipped, never recorded.
		rows, err := fr.open[disk].Rows()
		if err != nil {
			return stats, err
		}
		for _, r := range rows {
			stats.RowsRead++
			if !fn(r) {
				fr.Node.RowsScanned.Add(stats.RowsRead)
				return stats, nil
			}
		}
	}
	fr.Node.RowsScanned.Add(stats.RowsRead)
	return stats, nil
}

// ScanPageSets iterates the fragment page-set-wise instead of row-wise:
// fn receives each surviving set while its frames are pinned, so it can
// decode column pages straight into typed vector slabs without the boxed
// row materialization Scan pays. fn also receives the set's base page key
// and whether the set is sealed (immutable on disk), so a caller that
// evaluates the full predicate during decode can record proven absence
// into the predicate cache itself — sealed sets only. Page-set skipping
// (predicate cache and min-max) applies exactly as in Scan. Open
// (unflushed) sets come last per disk, never skipped, matching Scan's
// ordering. fn returns false to stop.
func (fr *ColumnarFragment) ScanPageSets(opts ScanOptions, fn func(set page.PageSet, key page.Key, sealed bool) (bool, error)) (ScanStats, error) {
	var stats ScanStats
	n := fr.Def.Schema.Len()
	for disk, fileID := range fr.Files {
		numPages := fr.Node.NumPages(fileID)
		numSets := int(numPages) / n
		for s := 0; s < numSets; s++ {
			cont, err := fr.scanOneSet(opts, fileID, s, &stats, fn)
			if err != nil {
				return stats, err
			}
			if !cont {
				fr.Node.RowsScanned.Add(stats.RowsRead)
				return stats, nil
			}
		}
		// Open (unflushed) set: never skipped.
		open := fr.open[disk]
		if open.NumRows() > 0 {
			cont, err := fn(open, page.Key{}, false)
			if err != nil {
				return stats, err
			}
			stats.RowsRead += int64(open.NumRows())
			if !cont {
				fr.Node.RowsScanned.Add(stats.RowsRead)
				return stats, nil
			}
		}
	}
	fr.Node.RowsScanned.Add(stats.RowsRead)
	return stats, nil
}

// scanOneSet applies the per-set skip checks, pins the set's frames, runs
// fn on the pinned set, and unpins. Shared by the serial and parallel
// page-set scans.
func (fr *ColumnarFragment) scanOneSet(opts ScanOptions, fileID page.FileID, s int, stats *ScanStats, fn func(set page.PageSet, key page.Key, sealed bool) (bool, error)) (bool, error) {
	n := fr.Def.Schema.Len()
	base := uint32(s * n)
	key := page.Key{File: fileID, Page: base}
	if len(opts.SkipConj) > 0 {
		if opts.UseCache && fr.PredCache.CanSkip(key, opts.SkipConj) {
			stats.PagesSkipped += int64(n)
			return true, nil
		}
		if opts.UseMinMax && fr.MinMax.CanSkip(key, opts.SkipConj) {
			stats.PagesSkipped += int64(n)
			return true, nil
		}
	}
	frames := make([]*buffer.Frame, 0, n)
	set := page.PageSet{}
	for i := 0; i < n; i++ {
		f, err := fr.Node.Buf.Fetch(page.Key{File: fileID, Page: base + uint32(i)})
		if err != nil {
			for _, pf := range frames {
				fr.Node.Buf.Unpin(pf, false)
			}
			return false, err
		}
		cp, err := page.AsColumnPage(f.Buf)
		if err != nil {
			fr.Node.Buf.Unpin(f, false)
			for _, pf := range frames {
				fr.Node.Buf.Unpin(pf, false)
			}
			return true, nil
		}
		frames = append(frames, f)
		set.Pages = append(set.Pages, cp)
	}
	cont, err := fn(set, key, true)
	for _, pf := range frames {
		fr.Node.Buf.Unpin(pf, false)
	}
	if err != nil {
		return false, err
	}
	stats.PagesRead += int64(n)
	stats.RowsRead += int64(set.NumRows())
	return cont, nil
}

// ParallelScanPageSets is ScanPageSets with N workers over the sealed page
// sets: workers claim runs of morselSets sets from a shared counter
// (ParallelScan's morsel scheme), and fn runs concurrently from all
// workers, each set pinned for the duration of its fn call. The open
// in-memory sets are scanned serially by worker 0 after the workers
// finish, never skipped, matching the ordering guarantee that unflushed
// rows come last per disk. fn returning false stops every worker after its
// current set. workers <= 1 degrades to the serial ScanPageSets.
func (fr *ColumnarFragment) ParallelScanPageSets(opts ScanOptions, workers, morselSets int, fn func(worker int, set page.PageSet, key page.Key, sealed bool) (bool, error)) (ScanStats, error) {
	if workers <= 1 {
		return fr.ScanPageSets(opts, func(set page.PageSet, key page.Key, sealed bool) (bool, error) {
			return fn(0, set, key, sealed)
		})
	}
	if morselSets <= 0 {
		morselSets = 1
	}
	n := fr.Def.Schema.Len()
	var morsels []setMorsel
	for disk, fileID := range fr.Files {
		numSets := int(fr.Node.NumPages(fileID)) / n
		for start := 0; start < numSets; start += morselSets {
			end := start + morselSets
			if end > numSets {
				end = numSets
			}
			morsels = append(morsels, setMorsel{disk: disk, file: fileID, start: start, end: end})
		}
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		total    ScanStats
		firstErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var stats ScanStats
		claim:
			for !stop.Load() {
				i := int(next.Add(1) - 1)
				if i >= len(morsels) {
					break
				}
				m := morsels[i]
				for s := m.start; s < m.end; s++ {
					if stop.Load() {
						break claim
					}
					cont, err := fr.scanOneSet(opts, m.file, s, &stats, func(set page.PageSet, key page.Key, sealed bool) (bool, error) {
						return fn(w, set, key, sealed)
					})
					if err != nil {
						stop.Store(true)
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						break claim
					}
					if !cont {
						stop.Store(true)
						break claim
					}
				}
			}
			mu.Lock()
			total.PagesRead += stats.PagesRead
			total.PagesSkipped += stats.PagesSkipped
			total.RowsRead += stats.RowsRead
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if firstErr != nil || stop.Load() {
		fr.Node.RowsScanned.Add(total.RowsRead)
		return total, firstErr
	}
	// Open (unflushed) sets: serial tail, never skipped or recorded.
	for disk := range fr.Files {
		open := fr.open[disk]
		if open.NumRows() == 0 {
			continue
		}
		cont, err := fn(0, open, page.Key{}, false)
		if err != nil {
			fr.Node.RowsScanned.Add(total.RowsRead)
			return total, err
		}
		total.RowsRead += int64(open.NumRows())
		if !cont {
			break
		}
	}
	fr.Node.RowsScanned.Add(total.RowsRead)
	return total, nil
}

// setMorsel is a contiguous run of sealed page sets of one disk's file.
type setMorsel struct {
	disk  int
	file  page.FileID
	start int // first set index
	end   int // exclusive
}

// ParallelScan is Scan with N workers over sealed page sets: workers claim
// runs of morselSets sets from a shared counter, applying the same page-set
// skipping and absence recording as the serial scan (sealed sets are
// immutable, so every set records). The open in-memory sets are scanned
// serially after the workers finish, never skipped or recorded, matching
// Scan's ordering guarantee that unflushed rows come last per disk. fn runs
// concurrently from all workers; returning false stops every worker after
// its current set. workers <= 1 degrades to the serial Scan.
func (fr *ColumnarFragment) ParallelScan(opts ScanOptions, workers, morselSets int, fn func(worker int, r types.Row) bool) (ScanStats, error) {
	if workers <= 1 {
		return fr.Scan(opts, func(r types.Row) bool { return fn(0, r) })
	}
	if morselSets <= 0 {
		morselSets = 1
	}
	n := fr.Def.Schema.Len()
	var morsels []setMorsel
	for disk, fileID := range fr.Files {
		numSets := int(fr.Node.NumPages(fileID)) / n
		for start := 0; start < numSets; start += morselSets {
			end := start + morselSets
			if end > numSets {
				end = numSets
			}
			morsels = append(morsels, setMorsel{disk: disk, file: fileID, start: start, end: end})
		}
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		total    ScanStats
		firstErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var stats ScanStats
			for !stop.Load() {
				i := int(next.Add(1) - 1)
				if i >= len(morsels) {
					break
				}
				if err := fr.scanSetMorsel(opts, morsels[i], &stats, &stop, func(r types.Row) bool {
					return fn(w, r)
				}); err != nil {
					stop.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					break
				}
			}
			mu.Lock()
			total.PagesRead += stats.PagesRead
			total.PagesSkipped += stats.PagesSkipped
			total.RowsRead += stats.RowsRead
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if firstErr != nil || stop.Load() {
		fr.Node.RowsScanned.Add(total.RowsRead)
		return total, firstErr
	}
	// Open (unflushed) sets: serial tail, never skipped, never recorded.
	for disk := range fr.Files {
		rows, err := fr.open[disk].Rows()
		if err != nil {
			fr.Node.RowsScanned.Add(total.RowsRead)
			return total, err
		}
		for _, r := range rows {
			total.RowsRead++
			if !fn(0, r) {
				fr.Node.RowsScanned.Add(total.RowsRead)
				return total, nil
			}
		}
	}
	fr.Node.RowsScanned.Add(total.RowsRead)
	return total, nil
}

// scanSetMorsel runs one worker's claimed run of sealed sets with Scan's
// exact per-set logic.
func (fr *ColumnarFragment) scanSetMorsel(opts ScanOptions, m setMorsel, stats *ScanStats, stop *atomic.Bool, fn func(r types.Row) bool) error {
	n := fr.Def.Schema.Len()
	colIndex := func(name string) int { return fr.Def.Schema.Find(name) }
	for s := m.start; s < m.end; s++ {
		if stop.Load() {
			return nil
		}
		base := uint32(s * n)
		key := page.Key{File: m.file, Page: base}
		if len(opts.SkipConj) > 0 {
			if opts.UseCache && fr.PredCache.CanSkip(key, opts.SkipConj) {
				stats.PagesSkipped += int64(n)
				continue
			}
			if opts.UseMinMax && fr.MinMax.CanSkip(key, opts.SkipConj) {
				stats.PagesSkipped += int64(n)
				continue
			}
		}
		frames := make([]*buffer.Frame, 0, n)
		set := page.PageSet{}
		bad := false
		for i := 0; i < n; i++ {
			f, err := fr.Node.Buf.Fetch(page.Key{File: m.file, Page: base + uint32(i)})
			if err != nil {
				for _, pf := range frames {
					fr.Node.Buf.Unpin(pf, false)
				}
				return err
			}
			cp, err := page.AsColumnPage(f.Buf)
			if err != nil {
				fr.Node.Buf.Unpin(f, false)
				bad = true
				break
			}
			frames = append(frames, f)
			set.Pages = append(set.Pages, cp)
		}
		if bad {
			for _, pf := range frames {
				fr.Node.Buf.Unpin(pf, false)
			}
			continue
		}
		rows, err := set.Rows()
		for _, pf := range frames {
			fr.Node.Buf.Unpin(pf, false)
		}
		if err != nil {
			return err
		}
		stats.PagesRead += int64(n)
		anyMatch := false
		for _, r := range rows {
			stats.RowsRead++
			if len(opts.SkipConj) > 0 && opts.SkipConj.MatchesRow(r, colIndex) {
				anyMatch = true
			}
			if !fn(r) {
				stop.Store(true)
				return nil
			}
		}
		if opts.UseCache && opts.SkipComplete && !anyMatch && len(opts.SkipConj) > 0 {
			fr.PredCache.Record(key, opts.SkipConj)
		}
	}
	return nil
}
