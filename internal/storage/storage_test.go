package storage

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/page"
	"repro/internal/skipcache"
	"repro/internal/types"
)

func lineitemDef(columnar bool) *catalog.TableDef {
	return &catalog.TableDef{
		Name: "lineitem",
		Schema: types.NewSchema(
			types.Column{Name: "l_orderkey", Kind: types.KindInt},
			types.Column{Name: "l_quantity", Kind: types.KindInt},
			types.Column{Name: "l_shipmode", Kind: types.KindString},
			types.Column{Name: "l_price", Kind: types.KindFloat},
		),
		Part:     catalog.Partitioning{Kind: catalog.PartHash, Cols: []string{"l_orderkey"}},
		Columnar: columnar,
	}
}

func newNode(t *testing.T, pageSize int) *NodeStore {
	t.Helper()
	ns, err := NewNodeStore(NodeConfig{
		NodeID: 0, BaseDir: t.TempDir(), NumDisks: 2,
		PageSize: pageSize, BufFrames: 256, BufStripes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ns.Close() })
	return ns
}

func liRow(i int64) types.Row {
	modes := []string{"AIR", "MAIL", "SHIP", "TRUCK"}
	return types.Row{
		types.NewInt(i),
		types.NewInt(i % 50),
		types.NewString(modes[i%4]),
		types.NewFloat(float64(i) * 1.01),
	}
}

func TestFragmentInsertScanGet(t *testing.T) {
	ns := newNode(t, 2048)
	fr, err := OpenFragment(ns, lineitemDef(false))
	if err != nil {
		t.Fatal(err)
	}
	var rids []page.RID
	for i := int64(0); i < 200; i++ {
		rid, err := fr.Insert(nil, liRow(i))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	// Get by RID.
	r, ok, err := fr.Get(rids[57])
	if err != nil || !ok || r[0].Int() != 57 {
		t.Fatalf("Get = %v ok=%v err=%v", r, ok, err)
	}
	// Scan sees everything exactly once.
	seen := map[int64]int{}
	stats, err := fr.Scan(ScanOptions{}, func(rid page.RID, r types.Row) bool {
		seen[r[0].Int()]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 200 || stats.RowsRead != 200 {
		t.Fatalf("scan saw %d distinct, %d rows", len(seen), stats.RowsRead)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("row %d seen %d times", k, c)
		}
	}
	// Rows should spread over both disks.
	disks := map[uint16]bool{}
	for _, rid := range rids {
		disks[rid.Disk] = true
	}
	if len(disks) != 2 {
		t.Errorf("rows on %d disks, want 2", len(disks))
	}
}

func TestFragmentDelete(t *testing.T) {
	ns := newNode(t, 2048)
	fr, _ := OpenFragment(ns, lineitemDef(false))
	var rids []page.RID
	for i := int64(0); i < 20; i++ {
		rid, _ := fr.Insert(nil, liRow(i))
		rids = append(rids, rid)
	}
	ok, err := fr.Delete(nil, rids[5])
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if ok, _ := fr.Delete(nil, rids[5]); ok {
		t.Error("double delete")
	}
	if _, ok, _ := fr.Get(rids[5]); ok {
		t.Error("deleted row still visible")
	}
	n, _ := fr.RowCount()
	if n != 19 {
		t.Errorf("count = %d", n)
	}
}

func TestFragmentPersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := NodeConfig{NodeID: 0, BaseDir: dir, NumDisks: 2, PageSize: 2048, BufFrames: 64, BufStripes: 2}
	ns, err := NewNodeStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fr, _ := OpenFragment(ns, lineitemDef(false))
	for i := int64(0); i < 100; i++ {
		fr.Insert(nil, liRow(i))
	}
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen the same directories.
	ns2, err := NewNodeStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ns2.Close()
	fr2, err := OpenFragment(ns2, lineitemDef(false))
	if err != nil {
		t.Fatal(err)
	}
	n, err := fr2.RowCount()
	if err != nil || n != 100 {
		t.Fatalf("reopened count = %d err=%v", n, err)
	}
}

func TestScanPredicateSkipping(t *testing.T) {
	ns := newNode(t, 1024)
	fr, _ := OpenFragment(ns, lineitemDef(false))
	for i := int64(0); i < 500; i++ {
		fr.Insert(nil, liRow(i))
	}
	theta := skipcache.Conj{{Col: "l_quantity", Op: skipcache.OpGt, Val: types.NewInt(100)}}
	opts := ScanOptions{SkipConj: theta, SkipComplete: true, UseCache: true}

	// First scan: nothing matches (quantity < 50 always); populates cache.
	matches := 0
	stats1, err := fr.Scan(opts, func(rid page.RID, r types.Row) bool {
		if r[1].Int() > 100 {
			matches++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if matches != 0 || stats1.PagesSkipped != 0 {
		t.Fatalf("first scan: matches=%d skipped=%d", matches, stats1.PagesSkipped)
	}
	// Second scan with the same predicate: all full pages skipped.
	stats2, err := fr.Scan(opts, func(rid page.RID, r types.Row) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if stats2.PagesSkipped == 0 {
		t.Fatal("second scan skipped nothing")
	}
	if stats2.PagesSkipped < stats1.PagesRead-2 {
		t.Errorf("skipped %d of %d full pages", stats2.PagesSkipped, stats1.PagesRead)
	}
	// A STRONGER predicate also skips (implication).
	stronger := skipcache.Conj{{Col: "l_quantity", Op: skipcache.OpGt, Val: types.NewInt(200)}}
	stats3, _ := fr.Scan(ScanOptions{SkipConj: stronger, SkipComplete: true, UseCache: true},
		func(rid page.RID, r types.Row) bool { return true })
	if stats3.PagesSkipped == 0 {
		t.Error("implied predicate skipped nothing")
	}
	// A WEAKER predicate must re-read pages.
	weaker := skipcache.Conj{{Col: "l_quantity", Op: skipcache.OpGt, Val: types.NewInt(10)}}
	stats4, _ := fr.Scan(ScanOptions{SkipConj: weaker, SkipComplete: true, UseCache: true},
		func(rid page.RID, r types.Row) bool { return true })
	if stats4.PagesSkipped != 0 {
		t.Error("weaker predicate must not skip")
	}
}

func TestScanMinMaxSkipping(t *testing.T) {
	ns := newNode(t, 1024)
	def := lineitemDef(false)
	def.ClusterCols = []string{"l_orderkey"} // clustering gives tight per-page ranges
	fr, _ := OpenFragment(ns, def)
	rows := make([]types.Row, 0, 500)
	for i := int64(0); i < 500; i++ {
		rows = append(rows, liRow(i))
	}
	if _, err := fr.Load(rows); err != nil {
		t.Fatal(err)
	}
	theta := skipcache.Conj{{Col: "l_orderkey", Op: skipcache.OpGt, Val: types.NewInt(450)}}
	stats, err := fr.Scan(ScanOptions{SkipConj: theta, UseMinMax: true},
		func(rid page.RID, r types.Row) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesSkipped == 0 {
		t.Error("min-max on clustered data should skip pages for a selective range")
	}
}

func TestScanPartialPredicateNotRecorded(t *testing.T) {
	ns := newNode(t, 1024)
	fr, _ := OpenFragment(ns, lineitemDef(false))
	for i := int64(0); i < 300; i++ {
		fr.Insert(nil, liRow(i))
	}
	// SkipComplete=false simulates a predicate with a non-convertible part
	// (e.g. LIKE): skipping may consult the cache but must not record.
	theta := skipcache.Conj{{Col: "l_quantity", Op: skipcache.OpGt, Val: types.NewInt(100)}}
	fr.Scan(ScanOptions{SkipConj: theta, SkipComplete: false, UseCache: true},
		func(rid page.RID, r types.Row) bool { return true })
	stats, _ := fr.Scan(ScanOptions{SkipConj: theta, SkipComplete: false, UseCache: true},
		func(rid page.RID, r types.Row) bool { return true })
	if stats.PagesSkipped != 0 {
		t.Error("partial predicate must not have been recorded")
	}
}

func TestScanEarlyStop(t *testing.T) {
	ns := newNode(t, 2048)
	fr, _ := OpenFragment(ns, lineitemDef(false))
	for i := int64(0); i < 100; i++ {
		fr.Insert(nil, liRow(i))
	}
	count := 0
	_, err := fr.Scan(ScanOptions{}, func(rid page.RID, r types.Row) bool {
		count++
		return count < 10
	})
	if err != nil || count != 10 {
		t.Fatalf("early stop count = %d err=%v", count, err)
	}
}

func TestLoadClustering(t *testing.T) {
	ns := newNode(t, 4096)
	def := lineitemDef(false)
	def.ClusterCols = []string{"l_quantity"}
	fr, _ := OpenFragment(ns, def)
	rows := []types.Row{liRow(3), liRow(1), liRow(2), liRow(9), liRow(7)}
	if _, err := fr.Load(rows); err != nil {
		t.Fatal(err)
	}
	// Within each disk's pages, rows must be in l_quantity order. Collect
	// per-disk sequences.
	perDisk := map[uint16][]int64{}
	fr.Scan(ScanOptions{}, func(rid page.RID, r types.Row) bool {
		perDisk[rid.Disk] = append(perDisk[rid.Disk], r[1].Int())
		return true
	})
	for d, seq := range perDisk {
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				t.Errorf("disk %d out of order: %v", d, seq)
			}
		}
	}
}

func TestReorganize(t *testing.T) {
	ns := newNode(t, 1024)
	def := lineitemDef(false)
	def.ClusterCols = []string{"l_orderkey"}
	fr, _ := OpenFragment(ns, def)
	var rids []page.RID
	for i := int64(0); i < 200; i++ {
		rid, _ := fr.Insert(nil, liRow(i))
		rids = append(rids, rid)
	}
	for i := 0; i < 100; i += 2 {
		fr.Delete(nil, rids[i])
	}
	// Populate the predicate cache, which reorganize must invalidate.
	theta := skipcache.Conj{{Col: "l_quantity", Op: skipcache.OpGt, Val: types.NewInt(100)}}
	fr.Scan(ScanOptions{SkipConj: theta, SkipComplete: true, UseCache: true},
		func(rid page.RID, r types.Row) bool { return true })
	if err := fr.Reorganize(); err != nil {
		t.Fatal(err)
	}
	n, _ := fr.RowCount()
	if n != 150 {
		t.Fatalf("rows after reorganize = %d, want 150", n)
	}
	// Cache must have been invalidated: no skipping now.
	stats, _ := fr.Scan(ScanOptions{SkipConj: theta, SkipComplete: true, UseCache: true},
		func(rid page.RID, r types.Row) bool { return true })
	if stats.PagesSkipped != 0 {
		t.Error("predicate cache survived reorganize")
	}
}

func TestColumnarLoadScan(t *testing.T) {
	ns := newNode(t, 2048)
	fr, err := OpenColumnarFragment(ns, lineitemDef(true))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]types.Row, 0, 300)
	for i := int64(0); i < 300; i++ {
		rows = append(rows, liRow(i))
	}
	if _, err := fr.Load(rows); err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	stats, err := fr.Scan(ScanOptions{}, func(r types.Row) bool {
		if len(r) != 4 {
			t.Fatalf("reconstructed row arity %d", len(r))
		}
		seen[r[0].Int()] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 300 {
		t.Fatalf("columnar scan saw %d rows", len(seen))
	}
	if stats.PagesRead == 0 {
		t.Error("no pages read — sets never flushed?")
	}
}

func TestColumnarOpenSetVisible(t *testing.T) {
	ns := newNode(t, 4096)
	fr, _ := OpenColumnarFragment(ns, lineitemDef(true))
	// Append a few rows without flushing: they sit in the open sets.
	for i := int64(0); i < 5; i++ {
		if err := fr.Append(liRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	fr.Scan(ScanOptions{}, func(r types.Row) bool { count++; return true })
	if count != 5 {
		t.Errorf("open-set rows visible = %d, want 5", count)
	}
}

func TestColumnarSkipping(t *testing.T) {
	ns := newNode(t, 1024)
	fr, _ := OpenColumnarFragment(ns, lineitemDef(true))
	rows := make([]types.Row, 0, 400)
	for i := int64(0); i < 400; i++ {
		rows = append(rows, liRow(i))
	}
	fr.Load(rows)
	theta := skipcache.Conj{{Col: "l_quantity", Op: skipcache.OpGt, Val: types.NewInt(100)}}
	opts := ScanOptions{SkipConj: theta, SkipComplete: true, UseCache: true}
	s1, err := fr.Scan(opts, func(r types.Row) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	s2, err := fr.Scan(opts, func(r types.Row) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if s2.PagesSkipped == 0 {
		t.Fatalf("columnar repeat scan skipped nothing (first read %d pages)", s1.PagesRead)
	}
}

func TestColumnarHuffmanStrings(t *testing.T) {
	// Long repetitive strings: the sealed sets should round-trip through
	// Huffman packing.
	ns := newNode(t, 1024)
	def := &catalog.TableDef{
		Name: "comments",
		Schema: types.NewSchema(
			types.Column{Name: "id", Kind: types.KindInt},
			types.Column{Name: "body", Kind: types.KindString},
		),
		Part:     catalog.Partitioning{Kind: catalog.PartHash, Cols: []string{"id"}},
		Columnar: true,
	}
	fr, _ := OpenColumnarFragment(ns, def)
	var rows []types.Row
	for i := int64(0); i < 200; i++ {
		rows = append(rows, types.Row{
			types.NewInt(i),
			types.NewString(fmt.Sprintf("final deposits wake quickly among the %d foxes", i%7)),
		})
	}
	fr.Load(rows)
	count := 0
	_, err := fr.Scan(ScanOptions{}, func(r types.Row) bool {
		if r[1].Str() == "" {
			t.Fatal("lost string payload")
		}
		count++
		return true
	})
	if err != nil || count != 200 {
		t.Fatalf("count=%d err=%v", count, err)
	}
}

func TestDiskStoreMetering(t *testing.T) {
	ns := newNode(t, 2048)
	fr, _ := OpenFragment(ns, lineitemDef(false))
	for i := int64(0); i < 50; i++ {
		fr.Insert(nil, liRow(i))
	}
	ns.Buf.FlushAll()
	if ns.Store.PagesWritten.Load() == 0 {
		t.Error("no page writes metered")
	}
}
