// Package storage implements HRDBMS's node-local table storage (Section
// III): page files spread across the node's disks, row and PAX-columnar
// table fragments, bulk loading with clustering, table scans with
// predicate-based data skipping and scan pre-declaration, and reorganize.
//
// Tables are partitioned across nodes by the catalog's partitioning
// strategy; within a node, rows spread across the node's disks. Each
// (table, disk) pair is one page file.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/page"
)

// DiskStore implements buffer.Store over the registered page files of one
// node, routing page reads/writes to the owning file.
type DiskStore struct {
	mu       sync.RWMutex
	files    map[page.FileID]*page.File
	nextFile page.FileID
	pageSize int

	// Metering for the performance model.
	PagesRead    atomic.Int64
	PagesWritten atomic.Int64
}

// NewDiskStore creates an empty registry with the given page size.
func NewDiskStore(pageSize int) *DiskStore {
	return &DiskStore{files: map[page.FileID]*page.File{}, nextFile: 1, pageSize: pageSize}
}

// Register opens (or creates) a page file and returns its ID.
func (d *DiskStore) Register(path string, compress bool) (page.FileID, error) {
	f, err := page.OpenFile(path, d.pageSize, compress)
	if err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextFile
	d.nextFile++
	d.files[id] = f
	return id, nil
}

// File returns the registered page file.
func (d *DiskStore) File(id page.FileID) (*page.File, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[id]
	if !ok {
		return nil, fmt.Errorf("storage: unknown file %d", id)
	}
	return f, nil
}

// ReadPage implements buffer.Store.
func (d *DiskStore) ReadPage(id page.FileID, pageNum uint32) ([]byte, error) {
	f, err := d.File(id)
	if err != nil {
		return nil, err
	}
	d.PagesRead.Add(1)
	// Reads of never-written (allocated) pages come back zeroed.
	if pageNum >= f.NumPages() {
		return make([]byte, d.pageSize), nil
	}
	return f.ReadPage(pageNum)
}

// WritePage implements buffer.Store.
func (d *DiskStore) WritePage(id page.FileID, pageNum uint32, buf []byte) error {
	f, err := d.File(id)
	if err != nil {
		return err
	}
	d.PagesWritten.Add(1)
	return f.WritePage(pageNum, buf)
}

// PageSize implements buffer.Store.
func (d *DiskStore) PageSize() int { return d.pageSize }

// Close closes every file.
func (d *DiskStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var firstErr error
	for _, f := range d.files {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Sync flushes every file.
func (d *DiskStore) Sync() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, f := range d.files {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// NodeStore is the storage stack of one worker node: its disks (directories),
// disk store, and buffer manager.
type NodeStore struct {
	NodeID   int
	Disks    []string
	Store    *DiskStore
	Buf      *buffer.Manager
	pageSize int

	// RowsScanned counts rows produced by table scans on this node (the
	// sequential-scan work term of the performance model).
	RowsScanned atomic.Int64

	mu        sync.Mutex
	nextAlloc map[page.FileID]uint32 // allocation high-water mark per file
}

// NodeConfig configures a node store.
type NodeConfig struct {
	NodeID     int
	BaseDir    string // one subdirectory per disk is created here
	NumDisks   int
	PageSize   int
	BufFrames  int
	BufStripes int
	FlushHook  func(lsn uint64) error
}

// NewNodeStore builds the storage stack, creating disk directories.
func NewNodeStore(cfg NodeConfig) (*NodeStore, error) {
	if cfg.NumDisks < 1 {
		cfg.NumDisks = 1
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = page.DefaultPageSize
	}
	if cfg.BufFrames == 0 {
		cfg.BufFrames = 256
	}
	if cfg.BufStripes == 0 {
		cfg.BufStripes = 4
	}
	ns := &NodeStore{
		NodeID:    cfg.NodeID,
		Store:     NewDiskStore(cfg.PageSize),
		pageSize:  cfg.PageSize,
		nextAlloc: map[page.FileID]uint32{},
	}
	for i := 0; i < cfg.NumDisks; i++ {
		dir := filepath.Join(cfg.BaseDir, fmt.Sprintf("node%d", cfg.NodeID), fmt.Sprintf("disk%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("storage: mkdir %s: %w", dir, err)
		}
		ns.Disks = append(ns.Disks, dir)
	}
	var opts []buffer.Option
	if cfg.FlushHook != nil {
		opts = append(opts, buffer.WithFlushHook(cfg.FlushHook))
	}
	ns.Buf = buffer.New(ns.Store, cfg.BufFrames, cfg.BufStripes, opts...)
	return ns, nil
}

// PageSize returns the node's page size.
func (ns *NodeStore) PageSize() int { return ns.pageSize }

// OpenFile registers a page file on the given disk for a table fragment.
func (ns *NodeStore) OpenFile(disk int, name string, compress bool) (page.FileID, error) {
	if disk < 0 || disk >= len(ns.Disks) {
		return 0, fmt.Errorf("storage: node %d has no disk %d", ns.NodeID, disk)
	}
	id, err := ns.Store.Register(filepath.Join(ns.Disks[disk], name), compress)
	if err != nil {
		return 0, err
	}
	f, _ := ns.Store.File(id)
	ns.mu.Lock()
	ns.nextAlloc[id] = f.NumPages()
	ns.mu.Unlock()
	return id, nil
}

// Allocate reserves the next page number in a file.
func (ns *NodeStore) Allocate(id page.FileID) uint32 {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	n := ns.nextAlloc[id]
	ns.nextAlloc[id] = n + 1
	return n
}

// NumPages returns the allocation high-water mark of a file.
func (ns *NodeStore) NumPages(id page.FileID) uint32 {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.nextAlloc[id]
}

// Close flushes buffers and closes files.
func (ns *NodeStore) Close() error {
	if err := ns.Buf.FlushAll(); err != nil {
		return err
	}
	return ns.Store.Close()
}
