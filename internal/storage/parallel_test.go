package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/page"
	"repro/internal/skipcache"
	"repro/internal/types"
)

// TestParallelScanParity: a morsel-parallel scan must see exactly the rows
// a serial scan sees (as a multiset) and report identical page statistics,
// across worker counts and morsel granularities including degenerate ones.
func TestParallelScanParity(t *testing.T) {
	ns := newNode(t, 2048)
	fr, err := OpenFragment(ns, lineitemDef(false))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]types.Row, 0, 5000)
	for i := int64(0); i < 5000; i++ {
		rows = append(rows, liRow(i))
	}
	if _, err := fr.Load(rows); err != nil {
		t.Fatal(err)
	}

	serial := map[int64]int{}
	serialStats, err := fr.Scan(ScanOptions{}, func(rid page.RID, r types.Row) bool {
		serial[r[0].Int()]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ workers, morselPages int }{
		{2, 1}, {4, 2}, {4, 16}, {8, 1}, {16, 4},
	} {
		t.Run(fmt.Sprintf("w%d_m%d", tc.workers, tc.morselPages), func(t *testing.T) {
			var mu sync.Mutex
			par := map[int64]int{}
			stats, err := fr.ParallelScan(ScanOptions{}, tc.workers, tc.morselPages,
				func(worker int, rid page.RID, r types.Row) bool {
					mu.Lock()
					par[r[0].Int()]++
					mu.Unlock()
					return true
				})
			if err != nil {
				t.Fatal(err)
			}
			if stats != serialStats {
				t.Errorf("stats = %+v, serial %+v", stats, serialStats)
			}
			if len(par) != len(serial) {
				t.Fatalf("saw %d distinct keys, serial %d", len(par), len(serial))
			}
			for k, c := range serial {
				if par[k] != c {
					t.Fatalf("key %d seen %d times, serial %d", k, par[k], c)
				}
			}
		})
	}
}

// TestParallelScanSkipParity: min-max skipping must skip the same pages
// under parallel and serial scans, and the surviving rows must match.
func TestParallelScanSkipParity(t *testing.T) {
	ns := newNode(t, 2048)
	fr, err := OpenFragment(ns, lineitemDef(false))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]types.Row, 0, 4000)
	for i := int64(0); i < 4000; i++ {
		rows = append(rows, liRow(i))
	}
	if _, err := fr.Load(rows); err != nil {
		t.Fatal(err)
	}
	// l_orderkey > 3500 skips most pages via min-max.
	opts := ScanOptions{
		SkipConj: skipcache.Conj{{
			Col: "l_orderkey", Op: skipcache.OpGt, Val: types.NewInt(3500),
		}},
		SkipComplete: true,
		UseMinMax:    true,
	}
	serial := map[int64]int{}
	serialStats, err := fr.Scan(opts, func(rid page.RID, r types.Row) bool {
		serial[r[0].Int()]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if serialStats.PagesSkipped == 0 {
		t.Fatal("test premise broken: serial scan skipped nothing")
	}
	var mu sync.Mutex
	par := map[int64]int{}
	stats, err := fr.ParallelScan(opts, 4, 2, func(worker int, rid page.RID, r types.Row) bool {
		mu.Lock()
		par[r[0].Int()]++
		mu.Unlock()
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats != serialStats {
		t.Errorf("stats = %+v, serial %+v", stats, serialStats)
	}
	if len(par) != len(serial) {
		t.Fatalf("saw %d distinct keys, serial %d", len(par), len(serial))
	}
}

// TestColumnarParallelScanParity mirrors the row-store parity check for
// columnar fragments (sealed-set morsels plus the serial open-set tail).
func TestColumnarParallelScanParity(t *testing.T) {
	ns := newNode(t, 2048)
	fr, err := OpenColumnarFragment(ns, lineitemDef(true))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]types.Row, 0, 5000)
	for i := int64(0); i < 5000; i++ {
		rows = append(rows, liRow(i))
	}
	if _, err := fr.Load(rows); err != nil {
		t.Fatal(err)
	}

	serial := map[int64]int{}
	serialStats, err := fr.Scan(ScanOptions{}, func(r types.Row) bool {
		serial[r[0].Int()]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			var mu sync.Mutex
			par := map[int64]int{}
			stats, err := fr.ParallelScan(ScanOptions{}, workers, 1,
				func(worker int, r types.Row) bool {
					mu.Lock()
					par[r[0].Int()]++
					mu.Unlock()
					return true
				})
			if err != nil {
				t.Fatal(err)
			}
			if stats != serialStats {
				t.Errorf("stats = %+v, serial %+v", stats, serialStats)
			}
			if len(par) != len(serial) {
				t.Fatalf("saw %d distinct keys, serial %d", len(par), len(serial))
			}
			for k, c := range serial {
				if par[k] != c {
					t.Fatalf("key %d seen %d times, serial %d", k, par[k], c)
				}
			}
		})
	}
}

// TestParallelScanEarlyStop: a consumer returning false must stop the scan
// promptly without error, like the serial contract.
func TestParallelScanEarlyStop(t *testing.T) {
	ns := newNode(t, 2048)
	fr, err := OpenFragment(ns, lineitemDef(false))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]types.Row, 0, 2000)
	for i := int64(0); i < 2000; i++ {
		rows = append(rows, liRow(i))
	}
	if _, err := fr.Load(rows); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	n := 0
	_, err = fr.ParallelScan(ScanOptions{}, 4, 1, func(worker int, rid page.RID, r types.Row) bool {
		mu.Lock()
		defer mu.Unlock()
		n++
		return n < 100
	})
	if err != nil {
		t.Fatal(err)
	}
	if n < 100 || n >= 2000 {
		t.Errorf("early stop saw %d rows", n)
	}
}
