package twopc

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/network"
	"repro/internal/page"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/wal"
)

type memStore struct {
	mu       sync.Mutex
	pages    map[page.Key][]byte
	pageSize int
}

func newMemStore(size int) *memStore {
	return &memStore{pages: map[page.Key][]byte{}, pageSize: size}
}

func (s *memStore) ReadPage(f page.FileID, n uint32) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.pages[page.Key{File: f, Page: n}]; ok {
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	}
	return make([]byte, s.pageSize), nil
}

func (s *memStore) WritePage(f page.FileID, n uint32, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := make([]byte, len(buf))
	copy(b, buf)
	s.pages[page.Key{File: f, Page: n}] = b
	return nil
}

func (s *memStore) PageSize() int { return s.pageSize }

// worker bundles one node's txn stack.
type worker struct {
	id   int
	mgr  *txn.Manager
	buf  *buffer.Manager
	part *Participant
}

// cluster spins up a coordinator (node 0) and n workers over a fabric.
func cluster(t *testing.T, n int, nmax int) (*Coordinator, []*worker, *network.Fabric) {
	t.Helper()
	ids := make([]int, n+1)
	for i := range ids {
		ids[i] = i
	}
	fabric := network.NewFabric(ids, 256)
	t.Cleanup(fabric.CloseAll)

	xalog, err := wal.Open(filepath.Join(t.TempDir(), "xa.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { xalog.Close() })
	cep, _ := fabric.Endpoint(0)
	coord, err := NewCoordinator(cep, xalog, nmax)
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve()

	var workers []*worker
	for i := 1; i <= n; i++ {
		log, err := wal.Open(filepath.Join(t.TempDir(), "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { log.Close() })
		buf := buffer.New(newMemStore(4096), 32, 2, buffer.WithFlushHook(log.FlushUpTo))
		mgr := txn.NewManager(log, txn.NewLockManager(time.Second), buf)
		ep, _ := fabric.Endpoint(i)
		part := NewParticipant(ep, mgr)
		part.Serve()
		workers = append(workers, &worker{id: i, mgr: mgr, buf: buf, part: part})
	}
	return coord, workers, fabric
}

// writeRow inserts through the TxHook protocol.
func writeRow(t *testing.T, w *worker, tx *txn.Tx, k page.Key, val int64) {
	t.Helper()
	if err := tx.LockPage(k, true); err != nil {
		t.Fatal(err)
	}
	f, err := w.buf.Fetch(k)
	if err != nil {
		t.Fatal(err)
	}
	if page.TypeOf(f.Buf) == page.TypeFree {
		page.InitRowPage(f.Buf)
	}
	rp, _ := page.AsRowPage(f.Buf)
	enc := types.AppendRow(nil, types.Row{types.NewInt(val)})
	slot, ok := rp.InsertEncoded(enc)
	if !ok {
		t.Fatal("page full")
	}
	lsn := tx.LogInsert(k, uint16(slot), enc)
	page.SetLSN(f.Buf, lsn)
	w.buf.Unpin(f, true)
}

func rowsOn(t *testing.T, w *worker, k page.Key) int {
	t.Helper()
	f, err := w.buf.Fetch(k)
	if err != nil {
		t.Fatal(err)
	}
	defer w.buf.Unpin(f, false)
	if page.TypeOf(f.Buf) == page.TypeFree {
		return 0
	}
	rp, _ := page.AsRowPage(f.Buf)
	return rp.LiveRows()
}

func TestGlobalCommitAcrossWorkers(t *testing.T) {
	coord, workers, _ := cluster(t, 5, 3)
	const txid = 100
	k := page.Key{File: 1, Page: 0}
	var ids []int
	for _, w := range workers {
		tx := w.mgr.BeginWithID(txid)
		writeRow(t, w, tx, k, int64(w.id))
		ids = append(ids, w.id)
	}
	committed, err := coord.CommitGlobal(txid, ids)
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("unanimous prepare should commit")
	}
	for _, w := range workers {
		if rowsOn(t, w, k) != 1 {
			t.Errorf("worker %d lost its row", w.id)
		}
		if w.mgr.ActiveCount() != 0 {
			t.Errorf("worker %d has dangling transactions", w.id)
		}
	}
	if got, known := coord.Outcome(txid); !known || !got {
		t.Error("outcome not recorded")
	}
}

func TestGlobalRollbackOnFailedVote(t *testing.T) {
	coord, workers, _ := cluster(t, 3, 3)
	const txid = 200
	k := page.Key{File: 1, Page: 0}
	// Only workers 1 and 2 join the transaction; worker 3 is told to
	// prepare a transaction it never started — our Participant treats a
	// missing transaction as vote-yes (nothing to do), so instead simulate
	// a NO vote by making worker 2's prepare fail: close its WAL.
	tx1 := workers[0].mgr.BeginWithID(txid)
	writeRow(t, workers[0], tx1, k, 1)
	tx2 := workers[1].mgr.BeginWithID(txid)
	writeRow(t, workers[1], tx2, k, 2)

	// Force worker 2's prepare to fail by closing its log.
	// (Log.Append still works in memory; Flush will fail.)
	workers[1].mgr.Log.Close()

	committed, err := coord.CommitGlobal(txid, []int{workers[0].id, workers[1].id})
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("failed prepare must roll back globally")
	}
	if got, known := coord.Outcome(txid); !known || got {
		t.Error("rollback outcome not recorded")
	}
	// Worker 1 (healthy) must have undone its write.
	if rowsOn(t, workers[0], k) != 0 {
		t.Error("healthy worker kept rolled-back write")
	}
}

func TestHierarchicalDegreeBound(t *testing.T) {
	// 12 workers, nmax 3: the coordinator should only talk to its tree
	// children, not all 12.
	coord, workers, fabric := cluster(t, 12, 3)
	const txid = 300
	k := page.Key{File: 1, Page: 0}
	var ids []int
	for _, w := range workers {
		tx := w.mgr.BeginWithID(txid)
		writeRow(t, w, tx, k, 1)
		ids = append(ids, w.id)
	}
	fabric.Meter().Reset()
	committed, err := coord.CommitGlobal(txid, ids)
	if err != nil || !committed {
		t.Fatalf("commit: %v %v", committed, err)
	}
	// Coordinator (node 0) peers: its ≤2 children only (fan-out nmax-1=2).
	links := fabric.Meter().PerLink()
	peers := map[int]bool{}
	for _, l := range links {
		if l.From == 0 {
			peers[l.To] = true
		}
		if l.To == 0 {
			peers[l.From] = true
		}
	}
	if len(peers) > 2 {
		t.Errorf("coordinator talked to %d peers (%v), want <= 2 via tree", len(peers), peers)
	}
}

func TestInDoubtResolution(t *testing.T) {
	coord, workers, _ := cluster(t, 2, 3)
	const txid = 400
	k := page.Key{File: 1, Page: 0}
	ids := []int{workers[0].id, workers[1].id}
	for _, w := range workers {
		tx := w.mgr.BeginWithID(txid)
		writeRow(t, w, tx, k, 5)
	}
	committed, err := coord.CommitGlobal(txid, ids)
	if err != nil || !committed {
		t.Fatalf("commit failed: %v %v", committed, err)
	}
	// Simulate a worker that crashed after PREPARE, recovered, and now
	// asks the coordinator. We fake it with a fresh prepared transaction
	// under a new ID whose outcome the coordinator recorded as commit.
	const txid2 = 401
	w := workers[0]
	tx := w.mgr.BeginWithID(txid2)
	writeRow(t, w, tx, k, 6)
	w.mgr.Prepare(tx, 0)
	// Coordinator recorded nothing for txid2 → presumed abort.
	if err := w.part.ResolveInDoubt(txid2, 0); err != nil {
		t.Fatal(err)
	}
	// The write from txid2 must be gone (presumed abort), the one from
	// txid still present.
	if got := rowsOn(t, w, k); got != 1 {
		t.Errorf("rows = %d, want 1 (committed only)", got)
	}
	// And a recorded commit outcome resolves to commit.
	const txid3 = 402
	tx3 := w.mgr.BeginWithID(txid3)
	writeRow(t, w, tx3, k, 7)
	committed, err = coord.CommitGlobal(txid3, []int{w.id})
	if err != nil || !committed {
		t.Fatalf("commit txid3: %v %v", committed, err)
	}
	if got := rowsOn(t, w, k); got != 2 {
		t.Errorf("rows = %d, want 2", got)
	}
}

func TestDeadParticipantTimesOutToRollback(t *testing.T) {
	coord, workers, _ := cluster(t, 3, 3)
	coord.VoteTimeout = 200 * time.Millisecond
	const txid = 900
	k := page.Key{File: 1, Page: 0}
	// Workers 1 and 2 join; worker 2's endpoint dies before prepare.
	tx1 := workers[0].mgr.BeginWithID(txid)
	writeRow(t, workers[0], tx1, k, 1)
	tx2 := workers[1].mgr.BeginWithID(txid)
	writeRow(t, workers[1], tx2, k, 2)
	workers[1].part.Ep.Close() // dead node

	start := time.Now()
	committed, err := coord.CommitGlobal(txid, []int{workers[0].id, workers[1].id})
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("commit with a dead participant must roll back")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("2PC hung for %v despite timeout", time.Since(start))
	}
	// The healthy worker must have rolled back its write.
	if got := rowsOn(t, workers[0], k); got != 0 {
		t.Errorf("healthy worker kept %d rows after global rollback", got)
	}
	if c, known := coord.Outcome(txid); !known || c {
		t.Error("rollback outcome not recorded")
	}
}
