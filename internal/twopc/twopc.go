// Package twopc implements HRDBMS's hierarchical two-phase commit (Section
// VI): the XA manager on a coordinator drives PREPARE/COMMIT/ROLLBACK over
// the tree topology so messages broadcast down the tree and votes/acks
// aggregate on the way back up, keeping the coordinator's work and
// connection count bounded. The coordinator's XA log records global
// outcomes; restarting workers resolve in-doubt transactions by asking the
// coordinator recorded in their PREPARE record.
package twopc

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/network"
	"repro/internal/topology"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Message types on the 2PC channels.
const (
	msgPrepare byte = iota + 1
	msgVote
	msgCommit
	msgRollback
	msgAck
	msgQueryOutcome
	msgOutcome
)

// Channel names.
const (
	reqChannel = "2pc.req"
)

func voteChannel(txid uint64, node int) string { return fmt.Sprintf("2pc.vote:%d:%d", txid, node) }
func ackChannel(txid uint64, node int) string  { return fmt.Sprintf("2pc.ack:%d:%d", txid, node) }
func outcomeChannel(txid uint64) string        { return fmt.Sprintf("2pc.outcome:%d", txid) }

// wire format: [type][txid uvarint][flag byte][coord varint][nmax uvarint]
// [nparts uvarint][parts varints...]
func encodeMsg(typ byte, txid uint64, flag bool, coord int, nmax int, parts []int) []byte {
	buf := []byte{typ}
	buf = binary.AppendUvarint(buf, txid)
	if flag {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendVarint(buf, int64(coord))
	buf = binary.AppendUvarint(buf, uint64(nmax))
	buf = binary.AppendUvarint(buf, uint64(len(parts)))
	for _, p := range parts {
		buf = binary.AppendVarint(buf, int64(p))
	}
	return buf
}

type msg struct {
	typ   byte
	txid  uint64
	flag  bool
	coord int
	nmax  int
	parts []int
}

func decodeMsg(b []byte) (msg, error) {
	var m msg
	if len(b) < 2 {
		return m, fmt.Errorf("twopc: short message")
	}
	m.typ = b[0]
	pos := 1
	txid, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return m, fmt.Errorf("twopc: bad txid")
	}
	pos += n
	m.txid = txid
	if pos >= len(b) {
		return m, fmt.Errorf("twopc: truncated flag")
	}
	m.flag = b[pos] == 1
	pos++
	coord, n := binary.Varint(b[pos:])
	if n <= 0 {
		return m, fmt.Errorf("twopc: bad coord")
	}
	pos += n
	m.coord = int(coord)
	nmax, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return m, fmt.Errorf("twopc: bad nmax")
	}
	pos += n
	m.nmax = int(nmax)
	nparts, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return m, fmt.Errorf("twopc: bad parts len")
	}
	pos += n
	for i := uint64(0); i < nparts; i++ {
		p, n := binary.Varint(b[pos:])
		if n <= 0 {
			return m, fmt.Errorf("twopc: bad part")
		}
		pos += n
		m.parts = append(m.parts, int(p))
	}
	return m, nil
}

// treeFor computes the broadcast tree for a transaction: participants[0]
// must be the coordinator (root).
func treeFor(parts []int, nmax int) (topology.Tree, error) {
	if nmax < 2 {
		nmax = 2
	}
	return topology.NewTree(len(parts), nmax)
}

func positionOf(parts []int, node int) int {
	for i, p := range parts {
		if p == node {
			return i
		}
	}
	return -1
}

// Participant serves 2PC requests on a worker node.
type Participant struct {
	Ep  network.Endpoint
	Mgr *txn.Manager

	stop chan struct{}
	wg   sync.WaitGroup

	errMu    sync.Mutex
	firstErr error
}

// noteErr records a failure from an async message handler, where there is
// no caller to return it to. Recovery re-resolves the transaction, but the
// failure must stay observable (walerr: durability errors are never
// silently dropped).
func (p *Participant) noteErr(err error) {
	if err == nil {
		return
	}
	p.errMu.Lock()
	if p.firstErr == nil {
		p.firstErr = err
	}
	p.errMu.Unlock()
}

// Err returns the first failure recorded by the participant's async
// handlers, if any.
func (p *Participant) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.firstErr
}

// NewParticipant wires a participant to its node's endpoint and
// transaction manager.
func NewParticipant(ep network.Endpoint, mgr *txn.Manager) *Participant {
	return &Participant{Ep: ep, Mgr: mgr, stop: make(chan struct{})}
}

// Serve processes 2PC requests until the endpoint closes.
func (p *Participant) Serve() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			m, err := p.Ep.Recv(reqChannel)
			if err != nil {
				return
			}
			req, err := decodeMsg(m.Payload)
			if err != nil {
				continue
			}
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.handle(req)
			}()
		}
	}()
}

// handle executes one request: forward down the tree, act locally, gather
// child responses, reply upward.
func (p *Participant) handle(req msg) {
	tree, err := treeFor(req.parts, req.nmax)
	if err != nil {
		return
	}
	pos := positionOf(req.parts, p.Ep.NodeID())
	if pos < 0 {
		return
	}
	children := tree.Children(pos)
	parent := req.parts[tree.Parent(pos)]

	// Forward the request to children first (pipelined broadcast).
	raw := encodeMsg(req.typ, req.txid, req.flag, req.coord, req.nmax, req.parts)
	for _, c := range children {
		_ = p.Ep.Send(req.parts[c], req.parts[c], reqChannel, raw)
	}

	switch req.typ {
	case msgPrepare:
		localOK := true
		if tx, ok := p.Mgr.Lookup(req.txid); ok {
			if err := p.Mgr.Prepare(tx, int32(req.coord)); err != nil {
				localOK = false
			}
		}
		// Aggregate votes: ours AND all children's.
		allOK := localOK
		for range children {
			vm, err := p.Ep.Recv(voteChannel(req.txid, p.Ep.NodeID()))
			if err != nil {
				allOK = false
				break
			}
			vote, err := decodeMsg(vm.Payload)
			if err != nil || !vote.flag {
				allOK = false
			}
		}
		_ = p.Ep.Send(parent, parent, voteChannel(req.txid, parent),
			encodeMsg(msgVote, req.txid, allOK, req.coord, req.nmax, nil))
	case msgCommit, msgRollback:
		if req.typ == msgCommit {
			p.noteErr(p.Mgr.CommitPrepared(req.txid))
		} else {
			p.noteErr(p.Mgr.RollbackPrepared(req.txid))
		}
		for range children {
			if _, err := p.Ep.Recv(ackChannel(req.txid, p.Ep.NodeID())); err != nil {
				break
			}
		}
		_ = p.Ep.Send(parent, parent, ackChannel(req.txid, parent),
			encodeMsg(msgAck, req.txid, true, req.coord, req.nmax, nil))
	}
}

// ResolveInDoubt asks the coordinator for the outcome of a prepared
// transaction after a restart, then applies it locally.
func (p *Participant) ResolveInDoubt(txid uint64, coordinator int) error {
	q := encodeMsg(msgQueryOutcome, txid, false, p.Ep.NodeID(), 0, nil)
	if err := p.Ep.Send(coordinator, coordinator, reqChannel, q); err != nil {
		return err
	}
	m, err := p.Ep.Recv(outcomeChannel(txid))
	if err != nil {
		return err
	}
	out, err := decodeMsg(m.Payload)
	if err != nil {
		return err
	}
	return p.Mgr.ResolveInDoubt(txid, out.flag)
}

// Coordinator is the XA manager: it owns global transaction outcomes and
// drives the hierarchical protocol. XALog stores the required PREPARE /
// COMMIT / ROLLBACK records. VoteTimeout bounds how long phase 1 waits for
// a subtree's vote — an unreachable participant reads as a NO vote and the
// transaction rolls back (Section VI pairs deadlock timeouts with
// cluster-wide rollback; the same applies to dead nodes).
type Coordinator struct {
	Ep          network.Endpoint
	XALog       *wal.Log
	Nmax        int
	VoteTimeout time.Duration

	mu       sync.Mutex
	outcomes map[uint64]bool // txid → committed?

	commits atomic.Int64 // global commit decisions (this run, not replayed)
	aborts  atomic.Int64 // global rollback decisions

	stop chan struct{}
	wg   sync.WaitGroup
}

// Commits returns the number of global transactions this coordinator
// decided to commit since it started (replayed outcomes excluded).
func (c *Coordinator) Commits() int64 { return c.commits.Load() }

// Aborts returns the number of global rollback decisions since start.
func (c *Coordinator) Aborts() int64 { return c.aborts.Load() }

// NewCoordinator builds the XA manager for a coordinator node. It fails if
// the XA log cannot be replayed: losing recorded outcomes would let
// presumed-abort roll back transactions that actually committed.
func NewCoordinator(ep network.Endpoint, xalog *wal.Log, nmax int) (*Coordinator, error) {
	c := &Coordinator{Ep: ep, XALog: xalog, Nmax: nmax, VoteTimeout: 5 * time.Second,
		outcomes: map[uint64]bool{}, stop: make(chan struct{})}
	if err := c.loadOutcomes(); err != nil {
		return nil, err
	}
	return c, nil
}

// loadOutcomes replays the XA log into the outcome table.
func (c *Coordinator) loadOutcomes() error {
	if c.XALog == nil {
		return nil
	}
	return c.XALog.Scan(0, func(r *wal.Record) bool {
		switch r.Type {
		case wal.RecXACommit:
			c.outcomes[r.TxID] = true
		case wal.RecXARollback:
			c.outcomes[r.TxID] = false
		}
		return true
	})
}

// Serve answers in-doubt outcome queries from restarting workers.
func (c *Coordinator) Serve() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			m, err := c.Ep.Recv(reqChannel)
			if err != nil {
				return
			}
			req, err := decodeMsg(m.Payload)
			if err != nil || req.typ != msgQueryOutcome {
				continue
			}
			c.mu.Lock()
			committed, known := c.outcomes[req.txid]
			c.mu.Unlock()
			// Presumed abort: unknown outcome means rollback.
			ans := encodeMsg(msgOutcome, req.txid, known && committed, c.Ep.NodeID(), 0, nil)
			_ = c.Ep.Send(req.coord, req.coord, outcomeChannel(req.txid), ans)
		}
	}()
}

// CommitGlobal runs full 2PC for a transaction across worker participants.
// Returns whether the transaction committed (false = rolled back after a
// negative vote or vote failure).
func (c *Coordinator) CommitGlobal(txid uint64, workers []int) (bool, error) {
	parts := append([]int{c.Ep.NodeID()}, workers...)
	tree, err := treeFor(parts, c.Nmax)
	if err != nil {
		return false, err
	}
	if c.XALog != nil {
		c.XALog.Append(&wal.Record{Type: wal.RecPrepare, TxID: txid})
		if err := c.XALog.Flush(); err != nil {
			return false, err
		}
	}
	// Phase 1: PREPARE down the tree. A child we cannot even reach is a
	// failed subtree: its vote is NO.
	prepare := encodeMsg(msgPrepare, txid, false, c.Ep.NodeID(), c.Nmax, parts)
	allOK := true
	expectVotes := 0
	for _, child := range tree.Children(0) {
		if err := c.Ep.Send(parts[child], parts[child], reqChannel, prepare); err != nil {
			allOK = false
			continue
		}
		expectVotes++
	}
	for i := 0; i < expectVotes; i++ {
		vm, err := c.recvTimeout(voteChannel(txid, c.Ep.NodeID()))
		if err != nil {
			// Missing or failed vote (dead subtree): decide rollback.
			allOK = false
			break
		}
		vote, err := decodeMsg(vm.Payload)
		if err != nil || !vote.flag {
			allOK = false
		}
	}
	// Decision: durable in the XA log before phase 2.
	decision := wal.RecXARollback
	if allOK {
		decision = wal.RecXACommit
	}
	if c.XALog != nil {
		c.XALog.Append(&wal.Record{Type: decision, TxID: txid})
		if err := c.XALog.Flush(); err != nil {
			return false, err
		}
	}
	c.mu.Lock()
	c.outcomes[txid] = allOK
	c.mu.Unlock()
	if allOK {
		c.commits.Add(1)
	} else {
		c.aborts.Add(1)
	}
	// Phase 2: COMMIT or ROLLBACK down the tree; acks aggregate up.
	typ := msgRollback
	if allOK {
		typ = msgCommit
	}
	phase2 := encodeMsg(typ, txid, allOK, c.Ep.NodeID(), c.Nmax, parts)
	expectAcks := 0
	for _, child := range tree.Children(0) {
		if err := c.Ep.Send(parts[child], parts[child], reqChannel, phase2); err != nil {
			continue // dead subtree: its nodes resolve via the XA log on restart
		}
		expectAcks++
	}
	for i := 0; i < expectAcks; i++ {
		if _, err := c.recvTimeout(ackChannel(txid, c.Ep.NodeID())); err != nil {
			// Phase 2 acks are best-effort: the decision is durable in the
			// XA log and restarting workers resolve through it.
			break
		}
	}
	return allOK, nil
}

// recvTimeout receives on a channel with the coordinator's vote timeout.
// The receiving goroutine is bounded: it parks on the endpoint until the
// message arrives or the endpoint closes.
func (c *Coordinator) recvTimeout(channel string) (network.Message, error) {
	type res struct {
		m   network.Message
		err error
	}
	ch := make(chan res, 1)
	go func() {
		m, err := c.Ep.Recv(channel)
		ch <- res{m, err}
	}()
	timeout := c.VoteTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	select {
	case r := <-ch:
		return r.m, r.err
	case <-time.After(timeout):
		return network.Message{}, fmt.Errorf("twopc: timeout waiting on %s", channel)
	}
}

// Outcome reports the recorded global decision for a transaction.
func (c *Coordinator) Outcome(txid uint64) (committed, known bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.outcomes[txid]
	return v, ok
}
