#!/usr/bin/env bash
# Full verification gate: build, vet, repo-specific lint, tests, race tests
# on the concurrency-heavy packages, and the invariants-tagged assertions.
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> hrdbms-lint (JSON report: lint-report.json)"
if ! go run ./cmd/hrdbms-lint -json ./... > lint-report.json; then
  echo "lint findings:" >&2
  cat lint-report.json >&2
  exit 1
fi

echo "==> go test"
go test ./...

echo "==> go test -race (exec, cluster, srv, buffer, txn, obs, network, storage, page)"
go test -race ./internal/exec ./internal/cluster ./internal/srv ./internal/buffer ./internal/txn ./internal/obs ./internal/network ./internal/storage ./internal/page

echo "==> go test -tags invariants (buffer, txn)"
go test -tags invariants ./internal/buffer ./internal/txn

echo "==> vectorized path: batch exchange under race, batch/row parity"
go test -race -count=1 \
  -run 'TestShuffleTinyBatchRows|TestSendAllHonorsWireBatchRows|TestAdaptersRoundTrip|TestBatchRowParityPipeline|TestGraceJoinAdapterSpillParity|TestSortAdapterSpillParity' \
  ./internal/exec

echo "==> vector kernels: vec/row parity under race (nulls, dict strings, spill)"
go test -race -count=1 \
  -run 'TestVecRowParityPipeline|TestVecRowParityTPCHAgg|TestVecRowParityNulls|TestVecAggSpillParity|TestVecJoinParity|TestVecJoinOverflowSpillParity|TestSendAllVecHonorsWireBatchRows' \
  ./internal/exec
go test -race -count=1 ./internal/vec

echo "==> morsel parallelism: parallel/serial parity under race, tiny budgets"
go test -race -count=1 -run 'TestParallel|TestColumnarParallel' \
  ./internal/exec ./internal/storage

echo "==> optimizer: golden plans, q-error, DP invariant, feedback loop (race)"
go test -race -count=1 -run 'TestGoldenPlans|TestQErrorGolden' ./internal/tpch
go test -race -count=1 -run 'TestDPNeverWorseThanGreedy' ./internal/opt
go test -race -count=1 -run 'TestCardinalityFeedbackLoop|TestExplainAnalyzeSQL' ./internal/cluster

echo "==> bench smoke (executed per-query stats + Q7/Q9/Q17/Q21 non-regression gate)"
go run ./cmd/hrdbms-bench -exp exec -json /tmp/bench_exec_smoke.json \
  -baseline BENCH_EXEC.json -assert q7,q9,q17,q21 >/dev/null
rm -f /tmp/bench_exec_smoke.json

echo "==> bench smoke (serving layer: 4 concurrent clients through admission)"
go run ./cmd/hrdbms-bench -exp serve -sf 0.01 -levels 4 -per-client 4 >/dev/null

echo "==> bench smoke (row vs batch vs vector pipeline, golden parity)"
go test -run '^$' -bench BenchmarkBatchVsRow -benchtime 1x ./internal/exec >/dev/null

echo "==> bench smoke (parallel vs serial, golden parity + throughput)"
go test -run '^$' -bench BenchmarkParallelVsSerial -benchtime 1x ./internal/exec >/dev/null

echo "==> bench smoke (typed vs boxed page decode)"
go test -run '^$' -bench BenchmarkTypedVsBoxedDecode -benchtime 1x ./internal/page >/dev/null

echo "==> fuzz smoke (typed decoders must error, never panic, on corrupt pages)"
go test -run '^$' -fuzz '^FuzzTypedDecode$' -fuzztime 5s ./internal/page >/dev/null

echo "OK"
